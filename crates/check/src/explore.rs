//! Exploration strategies: how schedules are generated and failures
//! handled.
//!
//! Per scenario, in order:
//!
//! 1. the **baseline** schedule (all defaults — catches plain bugs and
//!    records the decision stream the flip stage perturbs),
//! 2. the three targeted **attacks** (validation starvation, commit
//!    deferral, forwarding starvation),
//! 3. seeded **random walks**,
//! 4. **single flips**: every decision of the baseline stream is replayed
//!    up to some index and then exactly one non-default choice is taken —
//!    the preemption-bounding move with bound 1. Non-tie-break decisions
//!    are flipped first; they target protocol choices rather than event
//!    delivery order and find divergence faster.
//!
//! The first failure of a scenario is shrunk (see [`crate::shrink`]),
//! optionally saved as a reproducer, and ends that scenario's
//! exploration; other scenarios still run. All schedule generation is
//! seeded from the scenario, so two explorations of the same suite
//! produce identical manifests.

use crate::repro::Reproducer;
use crate::run::{run_scenario, FailureKind, Outcome, RunResult};
use crate::scenario::Scenario;
use crate::schedule::{Attack, Schedule};
use crate::shrink::{shrink, ShrinkStats};
use chats_runner::Json;
use chats_sim::DecisionKind;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// How much work to spend per scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreBudget {
    /// Random-walk schedules.
    pub walks: usize,
    /// Single-flip schedules (stage 4).
    pub flips: usize,
    /// Run the targeted attacks.
    pub attacks: bool,
}

impl ExploreBudget {
    /// CI-sized budget: finishes the smoke suite in seconds.
    #[must_use]
    pub fn smoke() -> ExploreBudget {
        ExploreBudget {
            walks: 3,
            flips: 16,
            attacks: true,
        }
    }

    /// Default budget for local exploration.
    #[must_use]
    pub fn full() -> ExploreBudget {
        ExploreBudget {
            walks: 12,
            flips: 64,
            attacks: true,
        }
    }
}

/// A failure found (and shrunk) during exploration.
#[derive(Debug, Clone)]
pub struct FoundFailure {
    /// What failed.
    pub kind: FailureKind,
    /// Description of the schedule that first triggered it.
    pub found_by: String,
    /// The shrunk replayable prefix.
    pub shrunk_prefix: Vec<u32>,
    /// Shrink statistics.
    pub stats: ShrinkStats,
    /// Where the reproducer was written, if a directory was given.
    pub repro_path: Option<PathBuf>,
    /// Diagnostic from the failing run (violations, panic message, …).
    pub detail: String,
}

/// Everything exploration learned about one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Schedules executed (excluding shrink probes).
    pub runs: usize,
    /// Runs that hit the cycle budget.
    pub inconclusive: usize,
    /// Image digest of the baseline run (manifest determinism anchor).
    pub base_digest: u64,
    /// Decision-stream length of the baseline run.
    pub base_decisions: usize,
    /// The scenario's failure, if any was found.
    pub failure: Option<FoundFailure>,
}

/// Result of exploring a suite.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Per-scenario results, in suite order.
    pub scenarios: Vec<ScenarioReport>,
}

impl ExploreReport {
    /// Number of scenarios that failed.
    #[must_use]
    pub fn failures(&self) -> usize {
        self.scenarios
            .iter()
            .filter(|s| s.failure.is_some())
            .count()
    }

    /// Total schedules executed.
    #[must_use]
    pub fn total_runs(&self) -> usize {
        self.scenarios.iter().map(|s| s.runs).sum()
    }

    /// Deterministic JSON manifest: same suite + budget → identical bytes
    /// (no timestamps, no absolute paths).
    #[must_use]
    pub fn to_json(&self, budget: &ExploreBudget) -> Json {
        let mut root = BTreeMap::new();
        root.insert("version".to_string(), Json::U64(1));
        let mut b = BTreeMap::new();
        b.insert("walks".to_string(), Json::U64(budget.walks as u64));
        b.insert("flips".to_string(), Json::U64(budget.flips as u64));
        b.insert("attacks".to_string(), Json::Bool(budget.attacks));
        root.insert("budget".to_string(), Json::Obj(b));
        let scenarios = self
            .scenarios
            .iter()
            .map(|s| {
                let mut m = BTreeMap::new();
                m.insert("name".to_string(), Json::Str(s.name.clone()));
                m.insert("runs".to_string(), Json::U64(s.runs as u64));
                m.insert("inconclusive".to_string(), Json::U64(s.inconclusive as u64));
                m.insert(
                    "base_digest".to_string(),
                    Json::Str(format!("{:016x}", s.base_digest)),
                );
                m.insert(
                    "base_decisions".to_string(),
                    Json::U64(s.base_decisions as u64),
                );
                let failure = s.failure.as_ref().map_or(Json::Null, |f| {
                    let mut fm = BTreeMap::new();
                    fm.insert("kind".to_string(), Json::Str(f.kind.as_str().to_string()));
                    fm.insert("found_by".to_string(), Json::Str(f.found_by.clone()));
                    fm.insert(
                        "shrunk_len".to_string(),
                        Json::U64(f.stats.shrunk_len as u64),
                    );
                    fm.insert(
                        "non_default".to_string(),
                        Json::U64(f.stats.non_default as u64),
                    );
                    let repro = f.repro_path.as_ref().map_or(Json::Null, |p| {
                        Json::Str(
                            p.file_name()
                                .map(|n| n.to_string_lossy().into_owned())
                                .unwrap_or_default(),
                        )
                    });
                    fm.insert("reproducer".to_string(), repro);
                    Json::Obj(fm)
                });
                m.insert("failure".to_string(), failure);
                Json::Obj(m)
            })
            .collect();
        root.insert("scenarios".to_string(), Json::Arr(scenarios));
        Json::Obj(root)
    }
}

/// Derives the seed of random walk `w` for a scenario (decorrelated from
/// the machine seed by a splitmix-style multiply).
fn walk_seed(scenario: &Scenario, w: usize) -> u64 {
    (scenario.seed ^ 0x5ee0_5ee0_5ee0_5ee0)
        .wrapping_add((w as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// The flip schedules derived from a baseline run, in priority order.
fn flip_schedules(base: &RunResult, budget: usize) -> Vec<Schedule> {
    let choices = base.choices();
    // Indices with real fan-out, protocol decisions before tie-breaks.
    let mut candidates: Vec<usize> = (0..base.decisions.len())
        .filter(|&i| base.decisions[i].choices > 1)
        .collect();
    candidates.sort_by_key(|&i| {
        let protocol = base.decisions[i].kind != DecisionKind::TieBreak;
        (if protocol { 0u8 } else { 1u8 }, i)
    });
    let mut out = Vec::new();
    'outer: for i in candidates {
        for alt in 1..base.decisions[i].choices {
            if alt == base.decisions[i].chosen {
                continue;
            }
            if out.len() >= budget {
                break 'outer;
            }
            let mut prefix: Vec<u32> = choices[..i].to_vec();
            prefix.push(alt);
            out.push(Schedule::replay(prefix));
        }
    }
    out
}

/// Handles a failing run: shrink, save a reproducer, build the report
/// entry.
fn handle_failure(
    scenario: &Scenario,
    schedule: &Schedule,
    result: &RunResult,
    kind: FailureKind,
    failures_dir: Option<&Path>,
) -> FoundFailure {
    let (shrunk, stats) = shrink(scenario, &result.choices(), kind);
    let note = format!(
        "found by {}; shrunk {} -> {} decisions ({} non-default)",
        schedule.describe(),
        stats.original_len,
        stats.shrunk_len,
        stats.non_default
    );
    let repro = Reproducer::new(scenario.clone(), shrunk.clone(), kind, note);
    let repro_path = failures_dir.and_then(|dir| match repro.save(dir) {
        Ok(path) => Some(path),
        Err(e) => {
            eprintln!("chats-check: could not save reproducer: {e}");
            None
        }
    });
    FoundFailure {
        kind,
        found_by: schedule.describe(),
        shrunk_prefix: shrunk,
        stats,
        repro_path,
        detail: result.detail.clone(),
    }
}

/// Explores one scenario under `budget`; stops at its first failure.
#[must_use]
pub fn explore_scenario(
    scenario: &Scenario,
    budget: &ExploreBudget,
    failures_dir: Option<&Path>,
) -> ScenarioReport {
    let mut report = ScenarioReport {
        name: scenario.name.clone(),
        runs: 0,
        inconclusive: 0,
        base_digest: 0,
        base_decisions: 0,
        failure: None,
    };

    let base = run_scenario(scenario, &Schedule::baseline());
    report.runs += 1;
    report.base_digest = base.image_digest;
    report.base_decisions = base.decisions.len();
    if let Outcome::Fail(kind) = base.outcome {
        report.failure = Some(handle_failure(
            scenario,
            &Schedule::baseline(),
            &base,
            kind,
            failures_dir,
        ));
        return report;
    }

    let mut schedules: Vec<Schedule> = Vec::new();
    if budget.attacks {
        schedules.extend(Attack::ALL.into_iter().map(Schedule::attack));
    }
    schedules.extend((0..budget.walks).map(|w| Schedule::random(walk_seed(scenario, w))));
    schedules.extend(flip_schedules(&base, budget.flips));

    for schedule in schedules {
        let result = run_scenario(scenario, &schedule);
        report.runs += 1;
        match result.outcome {
            Outcome::Pass => {}
            Outcome::Inconclusive(_) => report.inconclusive += 1,
            Outcome::Fail(kind) => {
                report.failure = Some(handle_failure(
                    scenario,
                    &schedule,
                    &result,
                    kind,
                    failures_dir,
                ));
                break;
            }
        }
    }
    report
}

/// Explores a suite; every scenario runs even when earlier ones fail.
#[must_use]
pub fn explore(
    scenarios: &[Scenario],
    budget: &ExploreBudget,
    failures_dir: Option<&Path>,
    quiet: bool,
) -> ExploreReport {
    let mut out = Vec::new();
    for scenario in scenarios {
        let report = explore_scenario(scenario, budget, failures_dir);
        if !quiet {
            let status = match &report.failure {
                Some(f) => format!(
                    "FAIL {} via {} (shrunk to {} decisions)",
                    f.kind.as_str(),
                    f.found_by,
                    f.stats.shrunk_len
                ),
                None if report.inconclusive > 0 => format!(
                    "ok ({} runs, {} inconclusive)",
                    report.runs, report.inconclusive
                ),
                None => format!("ok ({} runs)", report.runs),
            };
            eprintln!("chats-check: {:<24} {status}", report.name);
        }
        out.push(report);
    }
    ExploreReport { scenarios: out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chats_sim::DecisionRecord;

    fn rec(kind: DecisionKind, choices: u32, chosen: u32) -> DecisionRecord {
        DecisionRecord {
            kind,
            choices,
            chosen,
        }
    }

    #[test]
    fn flip_schedules_prioritize_protocol_decisions() {
        let base = RunResult {
            outcome: Outcome::Pass,
            violations: Vec::new(),
            sum: 0,
            expected: 0,
            image_digest: 0,
            decisions: vec![
                rec(DecisionKind::TieBreak, 3, 0),
                rec(DecisionKind::ConflictAction, 3, 0),
                rec(DecisionKind::CommitRelease, 2, 0),
            ],
            detail: String::new(),
        };
        let flips = flip_schedules(&base, 10);
        // conflict (2 alts) + commit (1 alt) + tiebreak (2 alts) = 5
        assert_eq!(flips.len(), 5);
        // First flip perturbs the ConflictAction at index 1, not the tie.
        assert_eq!(flips[0].prefix, vec![0, 1]);
        assert_eq!(flips[2].prefix, vec![0, 0, 1]);
        // Tie-break flips come last and perturb index 0.
        assert_eq!(flips[3].prefix, vec![1]);
    }

    #[test]
    fn flip_budget_is_respected() {
        let base = RunResult {
            outcome: Outcome::Pass,
            violations: Vec::new(),
            sum: 0,
            expected: 0,
            image_digest: 0,
            decisions: (0..50).map(|_| rec(DecisionKind::TieBreak, 4, 0)).collect(),
            detail: String::new(),
        };
        assert_eq!(flip_schedules(&base, 7).len(), 7);
    }

    #[test]
    fn walk_seeds_differ_per_walk_and_scenario() {
        let suite = crate::scenario::smoke_scenarios();
        assert_ne!(walk_seed(&suite[0], 0), walk_seed(&suite[0], 1));
        assert_ne!(walk_seed(&suite[0], 0), walk_seed(&suite[1], 0));
    }
}
