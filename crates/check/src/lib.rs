#![warn(missing_docs)]

//! Schedule exploration and checking for the CHATS machine (`chats-check`).
//!
//! The simulator is deterministic: one seed, one schedule. This crate
//! turns it into a schedule *explorer*. The machine exposes every point
//! where real hardware could legally have behaved differently — event
//! tie-breaks, conflict resolution, validation pacing, commit release —
//! as decision points (see [`chats_sim::DecisionKind`]); a
//! [`schedule::Schedule`] resolves them from a replayed prefix plus a
//! tail policy (defaults, seeded random walk, or a targeted attack).
//!
//! Checking layers on top:
//!
//! * [`run`] executes one (scenario, schedule) pair with the machine's
//!   oracles armed in record mode and judges the outcome — oracle
//!   violations, the committed-sum serializability invariant, deadlocks
//!   and panics all fail the run,
//! * [`explore`] sweeps schedules per scenario (baseline, attacks,
//!   random walks, single-decision flips) with a fixed budget,
//! * [`shrink`] reduces a failing decision trace to a minimal
//!   mostly-default prefix,
//! * [`repro`] saves failures as self-contained JSON that
//!   `chats-check replay` re-executes bit-exactly.
//!
//! # Example
//!
//! ```
//! use chats_check::{run_scenario, Outcome, Schedule, smoke_scenarios};
//!
//! let scenario = &smoke_scenarios()[0];
//! let baseline = run_scenario(scenario, &Schedule::baseline());
//! assert_eq!(baseline.outcome, Outcome::Pass);
//! // The full decision trace replays bit-exactly.
//! let again = run_scenario(scenario, &Schedule::replay(baseline.choices()));
//! assert_eq!(again.image_digest, baseline.image_digest);
//! ```

pub mod dissect;
pub mod explore;
pub mod repro;
pub mod run;
pub mod scenario;
pub mod schedule;
pub mod shrink;

pub use chats_machine::FaultPlan;
pub use dissect::{
    dissect, DissectOutcome, DissectReport, DissectRequest, DissectSide, Divergence, DivergentEvent,
};
pub use explore::{explore, explore_scenario, ExploreBudget, ExploreReport, ScenarioReport};
pub use repro::{default_failures_dir, Reproducer};
pub use run::{image_digest, run_scenario, FailureKind, Outcome, RunResult};
pub use scenario::{apply_fault_plan, full_scenarios, smoke_scenarios, ProgramSpec, Scenario};
pub use schedule::{Attack, Schedule, Tail};
pub use shrink::{shrink, ShrinkStats};
