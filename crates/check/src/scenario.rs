//! Checkable scenarios: a workload kernel plus the machine configuration
//! it runs under, serialisable to JSON so reproducers are self-contained.

use chats_core::HtmSystem;
use chats_machine::FaultPlan;
use chats_runner::Json;
use chats_tvm::gen::{self, Kernel};
use std::collections::BTreeMap;

/// Which attack kernel a scenario runs (see [`chats_tvm::gen`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramSpec {
    /// Randomized contention over a counter pool.
    Torture {
        /// Transactions per thread.
        iters: u64,
        /// Increments per transaction.
        per_tx: u64,
        /// Counter pool size in lines.
        pool: u64,
    },
    /// Fixed-order ladder building producer→consumer chains.
    ChainLadder {
        /// Transactions per thread.
        iters: u64,
        /// Rungs (lines) per transaction.
        depth: u64,
    },
    /// Read-modify-write enough contended lines to saturate the VSB.
    VsbFiller {
        /// Transactions per thread.
        iters: u64,
        /// Contended lines per transaction.
        lines: u64,
    },
    /// Evict the speculatively received line via same-set fills.
    CapacityProber {
        /// Transactions per thread.
        iters: u64,
        /// L1 set count of the target machine.
        sets: u64,
        /// Same-set filler lines swept per transaction.
        span: u64,
    },
    /// Long in-transaction spin after the increment, delaying commit.
    LateCommit {
        /// Transactions per thread.
        iters: u64,
        /// In-transaction spin cycles.
        spin: u64,
    },
    /// Increment one random counter, read the rest read-only (the kernel
    /// that exercises the commit-time atomicity check directly).
    Observer {
        /// Transactions per thread.
        iters: u64,
        /// Counter pool size in lines.
        pool: u64,
    },
    /// Mint 1 token per transaction to a random account through the
    /// compiled token contract (see [`chats_evm::check_kernel`]): a hot
    /// supply word plus `pool` balance words, each transaction the real
    /// contract-compiler output rather than a hand-built attack.
    EvmMintStorm {
        /// Transactions per thread.
        iters: u64,
        /// Account pool size (balance words).
        pool: u64,
    },
}

impl ProgramSpec {
    /// Builds the kernel (program + counters + per-thread invariant).
    #[must_use]
    pub fn build(&self) -> Kernel {
        match *self {
            ProgramSpec::Torture {
                iters,
                per_tx,
                pool,
            } => gen::torture(iters, per_tx, pool),
            ProgramSpec::ChainLadder { iters, depth } => gen::chain_ladder(iters, depth),
            ProgramSpec::VsbFiller { iters, lines } => gen::vsb_filler(iters, lines),
            ProgramSpec::CapacityProber { iters, sets, span } => {
                gen::capacity_prober(iters, sets, span)
            }
            ProgramSpec::LateCommit { iters, spin } => gen::late_commit(iters, spin),
            ProgramSpec::Observer { iters, pool } => gen::observer(iters, pool),
            ProgramSpec::EvmMintStorm { iters, pool } => {
                chats_evm::check_kernel::mint_storm(iters, pool)
            }
        }
    }

    /// JSON object with a `kind` discriminant.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut m = BTreeMap::new();
        let mut put = |k: &str, v: u64| {
            m.insert(k.to_string(), Json::U64(v));
        };
        let kind = match *self {
            ProgramSpec::Torture {
                iters,
                per_tx,
                pool,
            } => {
                put("iters", iters);
                put("per_tx", per_tx);
                put("pool", pool);
                "torture"
            }
            ProgramSpec::ChainLadder { iters, depth } => {
                put("iters", iters);
                put("depth", depth);
                "chain_ladder"
            }
            ProgramSpec::VsbFiller { iters, lines } => {
                put("iters", iters);
                put("lines", lines);
                "vsb_filler"
            }
            ProgramSpec::CapacityProber { iters, sets, span } => {
                put("iters", iters);
                put("sets", sets);
                put("span", span);
                "capacity_prober"
            }
            ProgramSpec::LateCommit { iters, spin } => {
                put("iters", iters);
                put("spin", spin);
                "late_commit"
            }
            ProgramSpec::Observer { iters, pool } => {
                put("iters", iters);
                put("pool", pool);
                "observer"
            }
            ProgramSpec::EvmMintStorm { iters, pool } => {
                put("iters", iters);
                put("pool", pool);
                "evm_mint_storm"
            }
        };
        m.insert("kind".to_string(), Json::Str(kind.to_string()));
        Json::Obj(m)
    }

    /// Inverse of [`ProgramSpec::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(v: &Json) -> Result<ProgramSpec, String> {
        let field = |k: &str| {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("program: missing numeric field '{k}'"))
        };
        match v.get("kind").and_then(Json::as_str) {
            Some("torture") => Ok(ProgramSpec::Torture {
                iters: field("iters")?,
                per_tx: field("per_tx")?,
                pool: field("pool")?,
            }),
            Some("chain_ladder") => Ok(ProgramSpec::ChainLadder {
                iters: field("iters")?,
                depth: field("depth")?,
            }),
            Some("vsb_filler") => Ok(ProgramSpec::VsbFiller {
                iters: field("iters")?,
                lines: field("lines")?,
            }),
            Some("capacity_prober") => Ok(ProgramSpec::CapacityProber {
                iters: field("iters")?,
                sets: field("sets")?,
                span: field("span")?,
            }),
            Some("late_commit") => Ok(ProgramSpec::LateCommit {
                iters: field("iters")?,
                spin: field("spin")?,
            }),
            Some("observer") => Ok(ProgramSpec::Observer {
                iters: field("iters")?,
                pool: field("pool")?,
            }),
            Some("evm_mint_storm") => Ok(ProgramSpec::EvmMintStorm {
                iters: field("iters")?,
                pool: field("pool")?,
            }),
            Some(k) => Err(format!("program: unknown kind '{k}'")),
            None => Err("program: missing 'kind'".to_string()),
        }
    }
}

/// Stable machine-readable key for an [`HtmSystem`] (reproducer JSON).
#[must_use]
pub fn system_key(system: HtmSystem) -> &'static str {
    match system {
        HtmSystem::Baseline => "baseline",
        HtmSystem::NaiveRs => "naive_rs",
        HtmSystem::Chats => "chats",
        HtmSystem::Power => "power",
        HtmSystem::Pchats => "pchats",
        HtmSystem::LevcBeIdealized => "levc_be_id",
    }
}

/// Inverse of [`system_key`].
#[must_use]
pub fn system_from_key(key: &str) -> Option<HtmSystem> {
    HtmSystem::ALL.into_iter().find(|&s| system_key(s) == key)
}

/// One complete checkable configuration: workload, system, machine seed.
///
/// A scenario is everything `chats-check` needs to rebuild a machine; a
/// scenario plus a decision prefix is everything it needs to rebuild a
/// *run* (see [`crate::repro::Reproducer`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Human-readable identifier (also the reproducer filename stem).
    pub name: String,
    /// HTM system under test.
    pub system: HtmSystem,
    /// Thread count (the machine is built with exactly this many cores).
    pub threads: usize,
    /// Machine seed; also salts the per-thread VM seeds.
    pub seed: u64,
    /// Workload kernel.
    pub program: ProgramSpec,
    /// Cycle budget; exceeding it is *inconclusive*, not a failure.
    pub max_cycles: u64,
    /// Arms the planted validation-skip bug (`Tuning::debug_skip_validation`);
    /// only ever set by tests proving the oracle catches it.
    pub skip_validation_bug: bool,
    /// Fault plan installed on the machine (`None` = fault-free). The
    /// plan rides inside reproducers, so a failing fault schedule replays
    /// and shrinks exactly like a failing decision schedule.
    pub faults: Option<FaultPlan>,
}

impl Scenario {
    /// JSON object (reproducer format).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut m = BTreeMap::new();
        m.insert("name".to_string(), Json::Str(self.name.clone()));
        m.insert(
            "system".to_string(),
            Json::Str(system_key(self.system).to_string()),
        );
        m.insert("threads".to_string(), Json::U64(self.threads as u64));
        m.insert("seed".to_string(), Json::U64(self.seed));
        m.insert("program".to_string(), self.program.to_json());
        m.insert("max_cycles".to_string(), Json::U64(self.max_cycles));
        m.insert(
            "skip_validation_bug".to_string(),
            Json::Bool(self.skip_validation_bug),
        );
        // The key is absent for fault-free scenarios, so their canonical
        // form (and reproducer hash) is unchanged from before fault plans
        // existed.
        if let Some(plan) = &self.faults {
            let embedded =
                Json::parse(&plan.to_json_text()).expect("fault plan renders valid JSON");
            m.insert("faults".to_string(), embedded);
        }
        Json::Obj(m)
    }

    /// Inverse of [`Scenario::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(v: &Json) -> Result<Scenario, String> {
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or("scenario: missing 'name'")?
            .to_string();
        let system = v
            .get("system")
            .and_then(Json::as_str)
            .and_then(system_from_key)
            .ok_or("scenario: missing or unknown 'system'")?;
        let threads = v
            .get("threads")
            .and_then(Json::as_u64)
            .ok_or("scenario: missing 'threads'")? as usize;
        let seed = v
            .get("seed")
            .and_then(Json::as_u64)
            .ok_or("scenario: missing 'seed'")?;
        let program =
            ProgramSpec::from_json(v.get("program").ok_or("scenario: missing 'program'")?)?;
        let max_cycles = v
            .get("max_cycles")
            .and_then(Json::as_u64)
            .ok_or("scenario: missing 'max_cycles'")?;
        let skip_validation_bug = v
            .get("skip_validation_bug")
            .and_then(Json::as_bool)
            .unwrap_or(false);
        let faults = match v.get("faults") {
            None => None,
            Some(f) => Some(
                FaultPlan::from_json_text(&f.to_compact()).map_err(|e| format!("scenario: {e}"))?,
            ),
        };
        Ok(Scenario {
            name,
            system,
            threads,
            seed,
            program,
            max_cycles,
            skip_validation_bug,
            faults,
        })
    }

    /// Canonical single-line rendering (hash input for reproducer names).
    #[must_use]
    pub fn canonical(&self) -> String {
        self.to_json().to_compact()
    }
}

fn scenario(
    name: &str,
    system: HtmSystem,
    threads: usize,
    seed: u64,
    program: ProgramSpec,
) -> Scenario {
    Scenario {
        name: name.to_string(),
        system,
        threads,
        seed,
        program,
        max_cycles: 50_000_000,
        skip_validation_bug: false,
        faults: None,
    }
}

/// Installs `plan` on every scenario of a suite, tagging the names so
/// progress lines and reproducers identify the plan at a glance.
pub fn apply_fault_plan(scenarios: &mut [Scenario], plan: &FaultPlan) {
    for s in scenarios.iter_mut() {
        s.name = format!("{}+{}", s.name, plan.name);
        s.faults = Some(plan.clone());
    }
}

/// The quick deterministic suite for CI (`chats-check explore --smoke`):
/// one scenario per kernel shape, forwarding systems only, small budgets.
#[must_use]
pub fn smoke_scenarios() -> Vec<Scenario> {
    use HtmSystem::{Chats, NaiveRs};
    vec![
        scenario(
            "smoke-torture-chats",
            Chats,
            3,
            11,
            ProgramSpec::Torture {
                iters: 8,
                per_tx: 2,
                pool: 2,
            },
        ),
        scenario(
            "smoke-ladder-chats",
            Chats,
            3,
            12,
            ProgramSpec::ChainLadder { iters: 6, depth: 3 },
        ),
        scenario(
            "smoke-vsb-chats",
            Chats,
            3,
            13,
            ProgramSpec::VsbFiller { iters: 4, lines: 6 },
        ),
        scenario(
            "smoke-capacity-chats",
            Chats,
            2,
            14,
            ProgramSpec::CapacityProber {
                iters: 5,
                sets: 16,
                span: 5,
            },
        ),
        scenario(
            "smoke-late-naive",
            NaiveRs,
            3,
            15,
            ProgramSpec::LateCommit {
                iters: 6,
                spin: 120,
            },
        ),
        scenario(
            "smoke-observer-chats",
            Chats,
            3,
            16,
            ProgramSpec::Observer { iters: 8, pool: 2 },
        ),
        scenario(
            "smoke-evm-mint-chats",
            Chats,
            3,
            17,
            ProgramSpec::EvmMintStorm { iters: 6, pool: 2 },
        ),
    ]
}

/// The full suite: every forwarding-relevant system over every kernel
/// shape at moderate contention.
#[must_use]
pub fn full_scenarios() -> Vec<Scenario> {
    let systems = [
        HtmSystem::Baseline,
        HtmSystem::NaiveRs,
        HtmSystem::Chats,
        HtmSystem::Pchats,
    ];
    let programs: [(&str, ProgramSpec); 7] = [
        (
            "torture",
            ProgramSpec::Torture {
                iters: 12,
                per_tx: 3,
                pool: 4,
            },
        ),
        (
            "ladder",
            ProgramSpec::ChainLadder {
                iters: 10,
                depth: 4,
            },
        ),
        ("vsb", ProgramSpec::VsbFiller { iters: 6, lines: 6 }),
        (
            "capacity",
            ProgramSpec::CapacityProber {
                iters: 8,
                sets: 16,
                span: 5,
            },
        ),
        (
            "late",
            ProgramSpec::LateCommit {
                iters: 8,
                spin: 200,
            },
        ),
        ("observer", ProgramSpec::Observer { iters: 10, pool: 2 }),
        ("evm-mint", ProgramSpec::EvmMintStorm { iters: 8, pool: 4 }),
    ];
    let mut out = Vec::new();
    for (si, &system) in systems.iter().enumerate() {
        for (pi, (pname, program)) in programs.iter().enumerate() {
            let name = format!("{pname}-{}", system_key(system));
            let seed = 100 + (si * programs.len() + pi) as u64;
            out.push(scenario(&name, system, 4, seed, *program));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_specs_round_trip() {
        let specs = [
            ProgramSpec::Torture {
                iters: 1,
                per_tx: 2,
                pool: 3,
            },
            ProgramSpec::ChainLadder { iters: 4, depth: 5 },
            ProgramSpec::VsbFiller { iters: 6, lines: 7 },
            ProgramSpec::CapacityProber {
                iters: 8,
                sets: 16,
                span: 9,
            },
            ProgramSpec::LateCommit {
                iters: 10,
                spin: 11,
            },
            ProgramSpec::Observer {
                iters: 12,
                pool: 13,
            },
            ProgramSpec::EvmMintStorm {
                iters: 14,
                pool: 15,
            },
        ];
        for s in specs {
            assert_eq!(ProgramSpec::from_json(&s.to_json()), Ok(s));
        }
    }

    #[test]
    fn scenario_round_trips_through_json_text() {
        for sc in smoke_scenarios() {
            let text = sc.to_json().to_pretty();
            let back = Scenario::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, sc);
        }
    }

    #[test]
    fn fault_plans_ride_inside_scenario_json() {
        let plain = smoke_scenarios().remove(0);
        assert!(
            !plain.to_json().to_compact().contains("faults"),
            "fault-free scenarios keep the pre-fault canonical form"
        );
        let mut suite = vec![plain.clone()];
        apply_fault_plan(&mut suite, &FaultPlan::lossy_noc());
        let sc = suite.remove(0);
        assert_eq!(sc.name, format!("{}+lossy-noc", plain.name));
        let text = sc.to_json().to_pretty();
        let back = Scenario::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, sc);
        assert_eq!(
            back.faults.as_ref().map(FaultPlan::hash),
            sc.faults.as_ref().map(FaultPlan::hash)
        );
        assert_ne!(sc.canonical(), plain.canonical());
    }

    #[test]
    fn system_keys_round_trip() {
        for s in HtmSystem::ALL {
            assert_eq!(system_from_key(system_key(s)), Some(s));
        }
        assert_eq!(system_from_key("nope"), None);
    }

    #[test]
    fn suite_names_are_unique() {
        for suite in [smoke_scenarios(), full_scenarios()] {
            let mut names: Vec<_> = suite.iter().map(|s| s.name.clone()).collect();
            names.sort();
            names.dedup();
            assert_eq!(names.len(), suite.len());
        }
    }

    #[test]
    fn suites_never_arm_the_planted_bug() {
        for sc in smoke_scenarios().into_iter().chain(full_scenarios()) {
            assert!(!sc.skip_validation_bug, "{}", sc.name);
        }
    }
}
