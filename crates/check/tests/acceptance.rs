//! End-to-end acceptance for the checking subsystem: the planted
//! validation-skip bug is found, shrunk, saved and replayed; exploration
//! of the real protocol is deterministic and clean.

use chats_check::{
    explore, explore_scenario, run_scenario, ExploreBudget, FailureKind, Outcome, ProgramSpec,
    Reproducer, Scenario, Schedule,
};
use chats_core::HtmSystem;
use std::path::PathBuf;

fn buggy(name: &str, seed: u64, program: ProgramSpec) -> Scenario {
    Scenario {
        name: name.to_string(),
        system: HtmSystem::Chats,
        threads: 3,
        seed,
        program,
        max_cycles: 50_000_000,
        skip_validation_bug: true,
        faults: None,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chats-check-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The headline acceptance path: a hidden validation-skip bug makes a
/// consumer commit a stale forwarded snapshot. The checker flags it (the
/// corrupted value becomes globally committed, so it surfaces through the
/// final-state sum invariant), shrinks the schedule, writes a reproducer,
/// and `replay` re-triggers the same failure bit-exactly.
#[test]
fn planted_validation_skip_bug_is_caught_shrunk_and_replayed() {
    let sc = buggy(
        "planted-late",
        1,
        ProgramSpec::LateCommit {
            iters: 8,
            spin: 150,
        },
    );
    let dir = temp_dir("planted");
    let report = explore_scenario(&sc, &ExploreBudget::smoke(), Some(&dir));

    let failure = report.failure.expect("planted bug not caught");
    assert!(
        matches!(
            failure.kind,
            FailureKind::SumMismatch | FailureKind::Violation
        ),
        "unexpected failure kind {:?}",
        failure.kind
    );
    assert!(
        failure.stats.shrunk_len <= failure.stats.original_len,
        "shrinking must never grow the schedule"
    );

    let path = failure.repro_path.expect("no reproducer written");
    let repro = Reproducer::load(&path).expect("reproducer must load back");
    assert_eq!(repro.scenario, sc);
    assert_eq!(repro.prefix, failure.shrunk_prefix);

    let (result, reproduced) = repro.replay();
    assert!(reproduced, "replay did not reproduce: {:?}", result.outcome);
    assert_eq!(result.outcome, Outcome::Fail(failure.kind));

    let _ = std::fs::remove_dir_all(&dir);
}

/// A buggy configuration that *passes* the default schedule (the stale
/// forwards happen to resolve benignly) must still be caught by the
/// schedule sweep — and then the shrunk prefix provably needs at least
/// one non-default decision, otherwise the baseline run would have
/// failed already.
#[test]
fn schedule_sweep_finds_bug_hidden_from_the_default_schedule() {
    let sc = buggy(
        "planted-hidden",
        3,
        ProgramSpec::Observer { iters: 8, pool: 2 },
    );
    let base = run_scenario(&sc, &Schedule::baseline());
    assert_eq!(
        base.outcome,
        Outcome::Pass,
        "precondition: this seed must pass the default schedule"
    );

    let dir = temp_dir("hidden");
    let report = explore_scenario(&sc, &ExploreBudget::smoke(), Some(&dir));
    let failure = report.failure.expect("sweep missed the hidden bug");
    assert!(
        failure.stats.non_default >= 1,
        "a shrunk all-default prefix contradicts the passing baseline"
    );

    // The shrunk prefix alone (no tail policy) re-triggers the failure.
    let replayed = run_scenario(&sc, &Schedule::replay(failure.shrunk_prefix.clone()));
    assert_eq!(replayed.outcome, Outcome::Fail(failure.kind));

    let _ = std::fs::remove_dir_all(&dir);
}

/// Shrinking and reproducers work on fault schedules too: a planted bug
/// explored under a fault plan is caught, shrunk, saved (the plan rides
/// inside the reproducer JSON) and replayed bit-exactly — with the fault
/// machinery active in every probe.
#[test]
fn fault_schedules_shrink_and_replay() {
    let mut sc = buggy(
        "planted-faulted",
        1,
        ProgramSpec::LateCommit {
            iters: 8,
            spin: 150,
        },
    );
    sc.faults = Some(chats_check::FaultPlan::abort_storm());
    let dir = temp_dir("faulted");
    let report = explore_scenario(&sc, &ExploreBudget::smoke(), Some(&dir));

    let failure = report.failure.expect("planted bug not caught under faults");
    let path = failure.repro_path.expect("no reproducer written");
    let repro = Reproducer::load(&path).expect("reproducer must load back");
    assert_eq!(
        repro
            .scenario
            .faults
            .as_ref()
            .map(chats_check::FaultPlan::hash),
        sc.faults.as_ref().map(chats_check::FaultPlan::hash),
        "the fault plan must ride inside the reproducer"
    );
    let (result, reproduced) = repro.replay();
    assert!(reproduced, "replay did not reproduce: {:?}", result.outcome);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Two explorations of the same suite produce byte-identical manifests:
/// no timestamps, no ambient randomness, schedules all derived from
/// scenario seeds.
#[test]
fn exploration_is_deterministic() {
    let scenarios = &chats_check::smoke_scenarios()[..2];
    let budget = ExploreBudget {
        walks: 1,
        flips: 4,
        attacks: true,
    };
    let a = explore(scenarios, &budget, None, true);
    let b = explore(scenarios, &budget, None, true);
    assert_eq!(
        a.to_json(&budget).to_pretty(),
        b.to_json(&budget).to_pretty()
    );
    assert_eq!(a.failures(), 0, "clean protocol must explore clean");
}
