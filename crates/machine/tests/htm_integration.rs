//! Cross-system integration tests: every HTM system must preserve
//! transactional semantics (serializability of committed effects) under
//! contention, and the mechanisms specific to each system must actually
//! engage.

use chats_core::{AbortCause, ForwardSet, HtmSystem, PolicyConfig};
use chats_machine::{Machine, Tuning};
use chats_mem::Addr;
use chats_sim::SystemConfig;
use chats_tvm::{ProgramBuilder, Reg, Vm};

/// Builds a program where a thread performs `iters` transactions, each
/// incrementing `counters_per_tx` counters chosen from a pool of
/// `pool_words` shared words (stride 8 words = distinct lines), starting at
/// a per-thread rotating offset so threads collide.
fn counter_torture(iters: u64, counters_per_tx: u64, pool_lines: u64) -> chats_tvm::Program {
    let mut b = ProgramBuilder::new();
    let (i, n, j, k, addr, v, one, pool, tid) = (
        Reg(0),
        Reg(1),
        Reg(2),
        Reg(3),
        Reg(4),
        Reg(5),
        Reg(6),
        Reg(7),
        Reg(8),
    );
    // tid preset in Reg(8) by the harness.
    b.imm(i, 0).imm(n, iters).imm(one, 1).imm(pool, pool_lines);
    let outer = b.label();
    b.bind(outer);
    b.tx_begin();
    b.imm(j, 0);
    let inner = b.label();
    b.bind(inner);
    // counter index = (i + j + tid) % pool ; address = index * 8
    b.add(k, i, j);
    b.add(k, k, tid);
    b.remi(k, k, 1); // placeholder, replaced below by pool mod via register
                     // Compute k % pool with a loop-free trick: k - (k / pool) * pool needs
                     // register division; emulate with repeated subtraction is costly, so
                     // use bitmask when pool is a power of two.
    assert!(pool_lines.is_power_of_two(), "pool must be a power of two");
    b.add(k, i, j);
    b.add(k, k, tid);
    b.andi(k, k, pool_lines - 1);
    b.shli(addr, k, 3);
    b.load(v, addr);
    b.add(v, v, one);
    b.store(addr, v);
    b.addi(j, j, 1);
    b.imm(k, counters_per_tx);
    b.blt(j, k, inner);
    b.tx_end();
    b.addi(i, i, 1);
    b.blt(i, n, outer);
    b.halt();
    b.build()
}

fn run_torture(system: HtmSystem, threads: usize, seed: u64) -> (Machine, chats_stats::RunStats) {
    let iters = 40u64;
    let per_tx = 3u64;
    let pool = 8u64;
    let prog = counter_torture(iters, per_tx, pool);
    let mut sys = SystemConfig::small_test();
    sys.core.cores = threads;
    let mut m = Machine::new(
        sys,
        PolicyConfig::for_system(system),
        Tuning::default(),
        seed,
    );
    for t in 0..threads {
        let mut vm = Vm::new(prog.clone(), seed + t as u64);
        vm.preset_reg(Reg(8), t as u64);
        m.load_thread(t, vm);
    }
    let stats = m.run(80_000_000).expect("torture run timed out");
    (m, stats)
}

/// The committed increments must all be present: total across counters ==
/// threads * iters * counters_per_tx. This is the serializability check —
/// lost updates or phantom speculative values would break the sum.
fn check_sum(m: &Machine, threads: u64) {
    let expect = threads * 40 * 3;
    let total: u64 = (0..8).map(|i| m.inspect_word(Addr(i * 8))).sum();
    assert_eq!(total, expect, "lost or duplicated transactional updates");
}

#[test]
fn baseline_preserves_atomicity() {
    let (m, s) = run_torture(HtmSystem::Baseline, 4, 11);
    check_sum(&m, 4);
    assert_eq!(s.forwardings, 0, "baseline never forwards");
    // Every transaction completes exactly once: as an HTM commit or as a
    // fallback-lock execution.
    assert_eq!(
        s.commits + s.fallback_acquisitions,
        4 * 40,
        "every transaction must complete exactly once"
    );
}

#[test]
fn naive_rs_preserves_atomicity() {
    let (m, _s) = run_torture(HtmSystem::NaiveRs, 4, 12);
    check_sum(&m, 4);
}

#[test]
fn chats_preserves_atomicity() {
    let (m, s) = run_torture(HtmSystem::Chats, 4, 13);
    check_sum(&m, 4);
    assert!(s.forwardings > 0, "contended CHATS run must forward");
    assert!(s.validations_ok > 0, "forwarded data must validate");
}

#[test]
fn power_preserves_atomicity() {
    let (m, s) = run_torture(HtmSystem::Power, 4, 14);
    check_sum(&m, 4);
    assert_eq!(s.forwardings, 0, "Power never forwards");
}

#[test]
fn pchats_preserves_atomicity() {
    let (m, _s) = run_torture(HtmSystem::Pchats, 4, 15);
    check_sum(&m, 4);
}

#[test]
fn levc_preserves_atomicity() {
    let (m, _s) = run_torture(HtmSystem::LevcBeIdealized, 4, 16);
    check_sum(&m, 4);
}

#[test]
fn runs_are_deterministic() {
    let (_, a) = run_torture(HtmSystem::Chats, 4, 99);
    let (_, b) = run_torture(HtmSystem::Chats, 4, 99);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.commits, b.commits);
    assert_eq!(a.aborts, b.aborts);
    assert_eq!(a.flits, b.flits);
}

#[test]
fn different_seeds_change_timing() {
    let (_, a) = run_torture(HtmSystem::Chats, 4, 1);
    let (_, b) = run_torture(HtmSystem::Chats, 4, 2);
    // Same totals (semantics), but schedules may differ.
    assert_eq!(a.commits, b.commits);
}

#[test]
fn uncontended_transactions_never_abort() {
    // Each thread works on its own private lines.
    let mut b = ProgramBuilder::new();
    let (i, n, addr, v, one, base) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4), Reg(5));
    b.imm(i, 0).imm(n, 20).imm(one, 1);
    let top = b.label();
    b.bind(top);
    b.tx_begin();
    b.shli(addr, i, 3);
    b.add(addr, addr, base);
    b.load(v, addr);
    b.add(v, v, one);
    b.store(addr, v);
    b.tx_end();
    b.addi(i, i, 1);
    b.blt(i, n, top);
    b.halt();
    let prog = b.build();

    let mut sys = SystemConfig::small_test();
    sys.core.cores = 4;
    let mut m = Machine::new(
        sys,
        PolicyConfig::for_system(HtmSystem::Chats),
        Tuning::default(),
        5,
    );
    for t in 0..4 {
        let mut vm = Vm::new(prog.clone(), t as u64);
        vm.preset_reg(Reg(5), 10_000 * (t as u64 + 1));
        m.load_thread(t, vm);
    }
    let s = m.run(10_000_000).unwrap();
    assert_eq!(s.total_aborts(), 0, "private data must never conflict");
    assert_eq!(s.commits, 80);
    for t in 0..4u64 {
        for i in 0..20u64 {
            assert_eq!(m.inspect_word(Addr(10_000 * (t + 1) + i * 8)), 1);
        }
    }
}

#[test]
fn read_sharing_is_free() {
    // All threads only read the same lines: no conflicts, no aborts.
    let mut b = ProgramBuilder::new();
    let (i, n, addr, v) = (Reg(0), Reg(1), Reg(2), Reg(3));
    b.imm(i, 0).imm(n, 30);
    let top = b.label();
    b.bind(top);
    b.tx_begin();
    b.andi(addr, i, 7);
    b.shli(addr, addr, 3);
    b.load(v, addr);
    b.tx_end();
    b.addi(i, i, 1);
    b.blt(i, n, top);
    b.halt();
    let prog = b.build();

    let mut sys = SystemConfig::small_test();
    sys.core.cores = 4;
    let mut m = Machine::new(
        sys,
        PolicyConfig::for_system(HtmSystem::Baseline),
        Tuning::default(),
        6,
    );
    for t in 0..4 {
        m.load_thread(t, Vm::new(prog.clone(), t as u64));
    }
    let s = m.run(10_000_000).unwrap();
    assert_eq!(s.total_aborts(), 0, "read-read sharing must not conflict");
    assert_eq!(s.commits, 120);
}

#[test]
fn capacity_overflow_falls_back_and_completes() {
    // One transaction writes more distinct lines in one set than the L1
    // has ways: speculative attempts die on capacity, the fallback path
    // (non-speculative) must complete the work.
    let mut b = ProgramBuilder::new();
    let (i, n, addr, v, sets) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4));
    b.imm(i, 0).imm(n, 8).imm(v, 7).imm(sets, 16 * 8); // 16 sets => stride 16 lines
    b.tx_begin();
    let top = b.label();
    b.bind(top);
    b.mul(addr, i, sets);
    b.store(addr, v);
    b.addi(i, i, 1);
    b.blt(i, n, top);
    b.tx_end();
    b.halt();
    let prog = b.build();

    let mut sys = SystemConfig::small_test();
    sys.core.cores = 1;
    sys.mem.l1_ways = 4; // 8 same-set lines cannot fit 4 ways
    let mut m = Machine::new(
        sys,
        PolicyConfig::for_system(HtmSystem::Baseline),
        Tuning::default(),
        7,
    );
    m.load_thread(0, Vm::new(prog, 0));
    let s = m.run(10_000_000).unwrap();
    assert!(
        s.aborts_by(AbortCause::Capacity) > 0,
        "expected capacity aborts"
    );
    assert!(s.fallback_acquisitions > 0, "expected the fallback path");
    for i in 0..8u64 {
        assert_eq!(m.inspect_word(Addr(i * 16 * 8)), 7);
    }
}

#[test]
fn power_token_engages_under_contention() {
    let (_, s) = run_torture(HtmSystem::Power, 4, 21);
    assert!(
        s.power_grants > 0,
        "contention must trigger power escalation"
    );
}

#[test]
fn chats_reduces_conflict_aborts_vs_baseline() {
    let (_, base) = run_torture(HtmSystem::Baseline, 4, 31);
    let (_, chats) = run_torture(HtmSystem::Chats, 4, 31);
    // The headline claim, qualitatively: forwarding converts aborts into
    // chained commits.
    assert!(
        chats.aborts_by(AbortCause::Conflict) < base.aborts_by(AbortCause::Conflict),
        "CHATS {} !< baseline {}",
        chats.aborts_by(AbortCause::Conflict),
        base.aborts_by(AbortCause::Conflict)
    );
}

#[test]
fn forward_set_write_only_still_correct() {
    let prog = counter_torture(40, 3, 8);
    let mut sys = SystemConfig::small_test();
    sys.core.cores = 4;
    let policy = PolicyConfig::for_system(HtmSystem::Chats).with_forward_set(ForwardSet::WriteOnly);
    let mut m = Machine::new(sys, policy, Tuning::default(), 8);
    for t in 0..4 {
        let mut vm = Vm::new(prog.clone(), t as u64);
        vm.preset_reg(Reg(8), t as u64);
        m.load_thread(t, vm);
    }
    m.run(80_000_000).unwrap();
    check_sum(&m, 4);
}

#[test]
fn zero_retry_policy_serializes_through_fallback() {
    let prog = counter_torture(40, 3, 8);
    let mut sys = SystemConfig::small_test();
    sys.core.cores = 4;
    let policy = PolicyConfig::for_system(HtmSystem::Baseline).with_retries(0);
    let mut m = Machine::new(sys, policy, Tuning::default(), 9);
    for t in 0..4 {
        let mut vm = Vm::new(prog.clone(), t as u64);
        vm.preset_reg(Reg(8), t as u64);
        m.load_thread(t, vm);
    }
    let s = m.run(80_000_000).unwrap();
    check_sum(&m, 4);
    assert!(s.fallback_acquisitions > 0);
}

#[test]
fn mixed_tx_and_plain_threads_coexist() {
    // Thread 0 increments inside transactions, thread 1 writes a private
    // region non-transactionally.
    let mut b0 = ProgramBuilder::new();
    let (i, n, addr, v, one) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4));
    b0.imm(i, 0).imm(n, 25).imm(one, 1).imm(addr, 0);
    let top0 = b0.label();
    b0.bind(top0);
    b0.tx_begin();
    b0.load(v, addr);
    b0.add(v, v, one);
    b0.store(addr, v);
    b0.tx_end();
    b0.addi(i, i, 1);
    b0.blt(i, n, top0);
    b0.halt();

    let mut b1 = ProgramBuilder::new();
    b1.imm(i, 0).imm(n, 25).imm(one, 1);
    let top1 = b1.label();
    b1.bind(top1);
    b1.shli(addr, i, 3);
    b1.addi(addr, addr, 4096);
    b1.store(addr, i);
    b1.addi(i, i, 1);
    b1.blt(i, n, top1);
    b1.halt();

    let mut sys = SystemConfig::small_test();
    sys.core.cores = 2;
    let mut m = Machine::new(
        sys,
        PolicyConfig::for_system(HtmSystem::Chats),
        Tuning::default(),
        10,
    );
    m.load_thread(0, Vm::new(b0.build(), 0));
    m.load_thread(1, Vm::new(b1.build(), 1));
    m.run(10_000_000).unwrap();
    assert_eq!(m.inspect_word(Addr(0)), 25);
    for i in 0..25u64 {
        assert_eq!(m.inspect_word(Addr(4096 + i * 8)), i);
    }
}

#[test]
fn sixteen_core_full_config_run() {
    // The paper's full 16-core geometry, moderate contention.
    let prog = counter_torture(10, 2, 16);
    let sys = SystemConfig::default();
    let mut m = Machine::new(
        sys,
        PolicyConfig::for_system(HtmSystem::Chats),
        Tuning::default(),
        17,
    );
    for t in 0..16 {
        let mut vm = Vm::new(prog.clone(), t as u64);
        vm.preset_reg(Reg(8), t as u64);
        m.load_thread(t, vm);
    }
    let s = m.run(200_000_000).unwrap();
    let total: u64 = (0..16).map(|i| m.inspect_word(Addr(i * 8))).sum();
    assert_eq!(total, 16 * 10 * 2);
    assert!(s.commits >= 160);
}
