//! Regression for the silent-eviction isolation hole (caught by the
//! atomicity oracle): a transactional reader whose clean E copy is
//! silently evicted must keep its read isolation — a later writer has to
//! abort it, not commit around it.

use chats_core::{AbortCause, HtmSystem, PolicyConfig};
use chats_machine::{Machine, Tuning};
use chats_mem::Addr;
use chats_sim::SystemConfig;
use chats_tvm::{ProgramBuilder, Reg, Vm};

/// Reader: transactionally reads line 0, then reads enough same-set lines
/// to force the clean copy of line 0 out of its 4-way set, lingers, and
/// records what it saw.
fn reader(sets: u64, ways: u64) -> chats_tvm::Program {
    let (a, v, out) = (Reg(0), Reg(1), Reg(2));
    let mut b = ProgramBuilder::new();
    b.tx_begin();
    b.imm(a, 0);
    b.load(v, a); // the protected read
                  // Evict line 0: fill its set with `ways + 1` other lines.
    for k in 1..=(ways + 1) {
        b.imm(a, k * sets * 8);
        b.load(out, a);
    }
    b.pause(600); // the writer strikes in this window
    b.imm(a, 4096);
    b.store(a, v); // publish the observed value
    b.tx_end();
    b.halt();
    b.build()
}

/// Writer: transactionally reads then increments line 0 mid-window.
fn writer() -> chats_tvm::Program {
    let (a, v) = (Reg(0), Reg(1));
    let mut b = ProgramBuilder::new();
    b.pause(250);
    b.tx_begin();
    b.imm(a, 0);
    b.load(v, a);
    b.addi(v, v, 1);
    b.store(a, v);
    b.tx_end();
    b.halt();
    b.build()
}

fn run(system: HtmSystem) -> (chats_stats::RunStats, u64, u64) {
    let mut sys = SystemConfig::small_test(); // 16 sets, 4 ways
    sys.core.cores = 2;
    let tuning = Tuning {
        check_atomicity: true, // the oracle is the real assertion here
        ..Tuning::default()
    };
    let mut m = Machine::new(sys, PolicyConfig::for_system(system), tuning, 5);
    m.load_thread(0, Vm::new(reader(16, 4), 0));
    m.load_thread(1, Vm::new(writer(), 1));
    let s = m.run(2_000_000).unwrap();
    (s, m.inspect_word(Addr(0)), m.inspect_word(Addr(4096)))
}

#[test]
fn evicted_reader_keeps_isolation_under_chats() {
    let (s, line0, observed) = run(HtmSystem::Chats);
    assert_eq!(line0, 1, "the writer's increment must commit");
    // Serializable outcomes: reader before writer (saw 0) or after (saw 1).
    // The oracle (armed) would have panicked on any non-serializable mix.
    assert!(
        observed == 0 || observed == 1,
        "impossible observation {observed}"
    );
    // If the reader serialized after the writer, it must have been aborted
    // and re-executed at least once.
    if observed == 1 {
        assert!(s.total_aborts() > 0);
    }
}

#[test]
fn evicted_reader_keeps_isolation_under_baseline() {
    let (_, line0, observed) = run(HtmSystem::Baseline);
    assert_eq!(line0, 1);
    assert!(observed == 0 || observed == 1);
}

#[test]
fn evicted_reader_is_aborted_not_ignored() {
    // Same scenario but the writer commits well inside the reader's
    // window, so a surviving stale reader would be non-serializable —
    // the reader must abort (conflict) and re-execute.
    let (s, _, _) = run(HtmSystem::Chats);
    // The invalidation path must have fired at least one conflict on
    // someone (reader aborted, or the writer lost to the reader's probe).
    assert!(
        s.conflicts > 0,
        "the writer's exclusive request must observe the reader"
    );
    let _ = s.aborts_by(AbortCause::Conflict);
}
