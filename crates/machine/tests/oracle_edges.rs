//! Oracle edge cases around CHATS forwarding (§IV): a forwarded line
//! evicted before validation, the VSB at full capacity, and a chain head
//! aborting after it has forwarded. Each scenario is run with the
//! atomicity oracle armed in record mode; the assertion is that the
//! protocol keeps these corners *benign* — no recorded violations, the
//! counted-increment sum exact — while the stats prove the corner was
//! actually exercised.

use chats_core::{AbortCause, HtmSystem, PolicyConfig};
use chats_machine::{Machine, Tuning};
use chats_mem::Addr;
use chats_sim::SystemConfig;
use chats_tvm::{ProgramBuilder, Reg, Vm};

/// `small_test` geometry: 16 sets x 4 ways, 8-word lines.
const SETS: u64 = 16;
const WAYS: u64 = 4;
const LINE_WORDS: u64 = 8;

/// Emits a counted loop: `body` runs `iters` times using `Reg(6)`/`Reg(7)`
/// as loop registers (the body must not clobber them).
fn counted(b: &mut ProgramBuilder, iters: u64, body: impl FnOnce(&mut ProgramBuilder)) {
    let (i, n) = (Reg(6), Reg(7));
    b.imm(i, 0).imm(n, iters);
    let top = b.label();
    b.bind(top);
    body(b);
    b.addi(i, i, 1);
    b.blt(i, n, top);
}

/// Emits `mem[word] += 1` through `Reg(0)`/`Reg(1)`.
fn incr(b: &mut ProgramBuilder, word: u64) {
    let (a, v) = (Reg(0), Reg(1));
    b.imm(a, word);
    b.load(v, a);
    b.addi(v, v, 1);
    b.store(a, v);
}

/// Runs the two programs on a 2-core oracle-armed machine and returns the
/// machine (for memory inspection) plus its run stats.
fn run_pair(
    system: HtmSystem,
    prog0: chats_tvm::Program,
    prog1: chats_tvm::Program,
    seed: u64,
) -> (Machine, chats_stats::RunStats) {
    let mut sys = SystemConfig::small_test();
    sys.core.cores = 2;
    let tuning = Tuning {
        check_atomicity: true,
        oracle_record: true,
        ..Tuning::default()
    };
    let mut m = Machine::new(sys, PolicyConfig::for_system(system), tuning, seed);
    m.load_thread(0, Vm::new(prog0, seed));
    m.load_thread(1, Vm::new(prog1, seed ^ 0x80));
    let s = m
        .run(50_000_000)
        .unwrap_or_else(|e| panic!("{system:?}: {e}"));
    assert_eq!(
        m.violations(),
        &[],
        "{system:?}: oracle violations recorded"
    );
    (m, s)
}

/// A forwarded line is pressure-evicted from the consumer's L1 before the
/// consumer validates it. The consumer must not lose the speculative
/// snapshot's isolation: either the eviction aborts it or the validation
/// machinery still covers the line — never a silently committed stale
/// read.
#[test]
fn forwarded_line_evicted_before_validation_is_benign() {
    const PRODUCER_ITERS: u64 = 12;
    const CONSUMER_ITERS: u64 = 12;

    // Producer: hold each increment of line 0 speculative for a long
    // window so the consumer's read is answered by forwarding.
    let mut b = ProgramBuilder::new();
    counted(&mut b, PRODUCER_ITERS, |b| {
        b.tx_begin();
        incr(b, 0);
        b.pause(400);
        b.tx_end();
        b.pause(40);
    });
    b.halt();
    let producer = b.build();

    // Consumer: read line 0 (forwarded while the producer is mid-window),
    // then touch `WAYS + 1` other set-0 lines so the forwarded copy is
    // evicted before the validation probe can run, linger, and commit its
    // own increment of the value it observed.
    let mut b = ProgramBuilder::new();
    let (a, v, t) = (Reg(0), Reg(1), Reg(2));
    b.pause(120);
    counted(&mut b, CONSUMER_ITERS, |b| {
        b.tx_begin();
        b.imm(a, 0);
        b.load(v, a);
        for k in 1..=(WAYS + 1) {
            b.imm(a, k * SETS * LINE_WORDS);
            b.load(t, a);
        }
        b.pause(250);
        b.imm(a, 0);
        b.addi(v, v, 1);
        b.store(a, v);
        b.tx_end();
        b.pause(40);
    });
    b.halt();
    let consumer = b.build();

    let (m, s) = run_pair(HtmSystem::Chats, producer, consumer, 0xE71C);
    assert_eq!(
        m.inspect_word(Addr(0)),
        PRODUCER_ITERS + CONSUMER_ITERS,
        "an increment was lost or duplicated"
    );
    assert!(
        s.forwardings > 0,
        "scenario failed to exercise forwarding (stats: {s:?})"
    );
}

/// The consumer's 4-entry VSB is driven to capacity: a producer holds six
/// lines speculatively modified while the consumer reads all six in one
/// transaction. The overflowing speculative responses must stall/retry
/// (or abort), never drop an unvalidated line.
#[test]
fn vsb_at_full_capacity_stalls_instead_of_dropping() {
    const LINES: u64 = 6; // vsb_size is 4 — two reads must overflow
    const PRODUCER_ITERS: u64 = 10;
    const CONSUMER_ITERS: u64 = 10;

    // Producer: one wide transaction speculatively incrementing all six
    // lines, then a long window before committing.
    let mut b = ProgramBuilder::new();
    counted(&mut b, PRODUCER_ITERS, |b| {
        b.tx_begin();
        for l in 0..LINES {
            incr(b, l * LINE_WORDS);
        }
        b.pause(600);
        b.tx_end();
        b.pause(40);
    });
    b.halt();
    let producer = b.build();

    // Consumer: read every line the producer is holding (each answered
    // speculatively lands in the VSB), plus one counted increment.
    let mut b = ProgramBuilder::new();
    let (a, t) = (Reg(2), Reg(3));
    b.pause(150);
    counted(&mut b, CONSUMER_ITERS, |b| {
        b.tx_begin();
        for l in 1..LINES {
            b.imm(a, l * LINE_WORDS);
            b.load(t, a);
        }
        incr(b, 0);
        b.tx_end();
        b.pause(40);
    });
    b.halt();
    let consumer = b.build();

    let (m, s) = run_pair(HtmSystem::Chats, producer, consumer, 0x5B5B);
    let total: u64 = (0..LINES)
        .map(|l| m.inspect_word(Addr(l * LINE_WORDS)))
        .sum();
    assert_eq!(
        total,
        PRODUCER_ITERS * LINES + CONSUMER_ITERS,
        "an increment was lost or duplicated"
    );
    assert!(
        s.forwardings > 0,
        "scenario failed to exercise forwarding (stats: {s:?})"
    );
}

/// A chain head aborts *after* forwarding: the producer forwards its
/// speculative increment, then deliberately overflows its own L1 set and
/// takes a capacity abort, rolling the increment back. The consumer's
/// forwarded snapshot is now stale; validation must catch it (the
/// consumer aborts and retries) — committing it would corrupt memory,
/// which the sum check and the armed oracle would both expose.
#[test]
fn chain_head_capacity_abort_after_forwarding_squashes_consumer() {
    const PRODUCER_ITERS: u64 = 8;
    const CONSUMER_ITERS: u64 = 16;

    // Producer: increment line 0, linger so the consumer consumes the
    // speculative value, then increment WAYS more set-0 lines — clean
    // read lines evict silently under the read signature, so the filler
    // accesses must be *writes*: five speculatively modified lines in a
    // 4-way set force a capacity abort. The retry manager eventually
    // commits the transaction (retry or fallback lock), so every
    // increment still counts exactly once.
    let mut b = ProgramBuilder::new();
    counted(&mut b, PRODUCER_ITERS, |b| {
        b.tx_begin();
        incr(b, 0);
        b.pause(300);
        for k in 1..=WAYS {
            incr(b, k * SETS * LINE_WORDS);
        }
        b.tx_end();
        b.pause(60);
    });
    b.halt();
    let producer = b.build();

    // Consumer: plain counted increments of line 0, timed to consume the
    // producer's doomed speculative value.
    let mut b = ProgramBuilder::new();
    b.pause(100);
    counted(&mut b, CONSUMER_ITERS, |b| {
        b.tx_begin();
        incr(b, 0);
        b.tx_end();
        b.pause(70);
    });
    b.halt();
    let consumer = b.build();

    let (m, s) = run_pair(HtmSystem::Chats, producer, consumer, 0xC4A1);
    let filler_sum: u64 = (1..=WAYS)
        .map(|k| m.inspect_word(Addr(k * SETS * LINE_WORDS)))
        .sum();
    assert_eq!(
        m.inspect_word(Addr(0)) + filler_sum,
        PRODUCER_ITERS * (WAYS + 1) + CONSUMER_ITERS,
        "a rolled-back forward leaked into committed state"
    );
    assert!(
        s.aborts_by(AbortCause::Capacity) > 0,
        "the chain head never took its capacity abort (stats: {s:?})"
    );
    assert!(
        s.forwardings > 0,
        "scenario failed to exercise forwarding (stats: {s:?})"
    );
}
