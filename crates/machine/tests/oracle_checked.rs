//! Contended runs with the atomicity oracle armed: every commit is checked
//! against the §III-C criterion (each transactionally read word equals the
//! committed value at the commit instant). Any speculative value that
//! escaped validation panics the run.

use chats_core::{HtmSystem, PolicyConfig};
use chats_machine::{Machine, Tuning};
use chats_mem::Addr;
use chats_sim::SystemConfig;
use chats_tvm::{ProgramBuilder, Reg, Vm};

fn checked_tuning() -> Tuning {
    Tuning {
        check_atomicity: true,
        ..Tuning::default()
    }
}

/// Mixed read/write kernel: read three random hot words, sum them, RMW one
/// of them — plenty of forwarded reads to check at commit.
fn kernel(iters: u64) -> chats_tvm::Program {
    let (a, v, sum, i, n, bound) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4), Reg(5));
    let mut b = ProgramBuilder::new();
    b.imm(i, 0).imm(n, iters);
    let top = b.label();
    b.bind(top);
    b.tx_begin();
    b.imm(sum, 0);
    for _ in 0..3 {
        b.imm(bound, 4);
        b.rand(a, bound);
        b.shli(a, a, 3);
        b.load(v, a);
        b.add(sum, sum, v);
    }
    b.imm(bound, 4);
    b.rand(a, bound);
    b.shli(a, a, 3);
    b.load(v, a);
    b.addi(v, v, 1);
    b.store(a, v);
    b.tx_end();
    b.pause(20);
    b.addi(i, i, 1);
    b.blt(i, n, top);
    b.halt();
    b.build()
}

fn run_checked(system: HtmSystem, seed: u64) {
    let mut sys = SystemConfig::small_test();
    sys.core.cores = 4;
    let mut m = Machine::new(
        sys,
        PolicyConfig::for_system(system),
        checked_tuning(),
        seed,
    );
    for t in 0..4 {
        m.load_thread(t, Vm::new(kernel(25), seed ^ (t as u64) << 9));
    }
    m.run(100_000_000)
        .unwrap_or_else(|e| panic!("{system:?}: {e}"));
    let total: u64 = (0..4).map(|l| m.inspect_word(Addr(l * 8))).sum();
    assert_eq!(total, 4 * 25, "{system:?}: committed increments must sum");
}

#[test]
fn baseline_passes_the_oracle() {
    run_checked(HtmSystem::Baseline, 31);
}

#[test]
fn naive_rs_passes_the_oracle() {
    run_checked(HtmSystem::NaiveRs, 32);
}

#[test]
fn chats_passes_the_oracle() {
    run_checked(HtmSystem::Chats, 33);
}

#[test]
fn power_passes_the_oracle() {
    run_checked(HtmSystem::Power, 34);
}

#[test]
fn pchats_passes_the_oracle() {
    run_checked(HtmSystem::Pchats, 35);
}

#[test]
fn levc_passes_the_oracle() {
    run_checked(HtmSystem::LevcBeIdealized, 36);
}

#[test]
fn oracle_survives_many_seeds_under_chats() {
    for seed in 100..110 {
        run_checked(HtmSystem::Chats, seed);
    }
}

/// The paper-scale variant: the full default geometry (16 cores, 64-set
/// x 12-way L1s) instead of `small_test`, every system, heavier kernels.
/// Too slow for the default `cargo test` wall; run via
/// `cargo test -- --ignored` (the CI nightly/ignored step does).
#[test]
#[ignore = "paper-scale (16-core) oracle run; exercised by the CI --ignored step"]
fn paper_config_sixteen_cores_pass_the_oracle() {
    const CORES: usize = 16;
    const ITERS: u64 = 40;
    for (k, &system) in HtmSystem::ALL.iter().enumerate() {
        let seed = 0x9A9E_0000 + k as u64;
        let sys = SystemConfig::default(); // 16 cores, paper geometry
        assert_eq!(sys.core.cores, CORES, "paper config must be 16 cores");
        let mut m = Machine::new(
            sys,
            PolicyConfig::for_system(system),
            checked_tuning(),
            seed,
        );
        for t in 0..CORES {
            m.load_thread(t, Vm::new(kernel(ITERS), seed ^ (t as u64) << 9));
        }
        m.run(500_000_000)
            .unwrap_or_else(|e| panic!("{system:?}: {e}"));
        let total: u64 = (0..4).map(|l| m.inspect_word(Addr(l * 8))).sum();
        assert_eq!(
            total,
            CORES as u64 * ITERS,
            "{system:?}: committed increments must sum at paper scale"
        );
    }
}
