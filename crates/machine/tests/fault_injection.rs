//! Fault-injection robustness tests: every shipped fault plan must leave
//! transactional semantics intact on every HTM system, the no-faults path
//! must be bit-identical to a machine without a plan, and injected hangs
//! must surface as structured failure reports instead of raw timeouts.

use chats_core::{HtmSystem, PolicyConfig};
use chats_machine::{FaultPlan, Machine, SimError, TraceEvent, Tuning};
use chats_mem::Addr;
use chats_sim::SystemConfig;
use chats_tvm::{ProgramBuilder, Reg, Vm};

/// `iters` transactions per thread, each incrementing `per_tx` counters
/// from a pool of `pool_lines` distinct lines, rotated per thread so
/// threads collide constantly.
fn contended_counters(iters: u64, per_tx: u64, pool_lines: u64) -> chats_tvm::Program {
    assert!(pool_lines.is_power_of_two(), "pool must be a power of two");
    let mut b = ProgramBuilder::new();
    let (i, n, j, k, addr, v, one, tid) = (
        Reg(0),
        Reg(1),
        Reg(2),
        Reg(3),
        Reg(4),
        Reg(5),
        Reg(6),
        Reg(8),
    );
    b.imm(i, 0).imm(n, iters).imm(one, 1);
    let outer = b.label();
    b.bind(outer);
    b.tx_begin();
    b.imm(j, 0);
    let inner = b.label();
    b.bind(inner);
    b.add(k, i, j);
    b.add(k, k, tid);
    b.andi(k, k, pool_lines - 1);
    b.shli(addr, k, 3);
    b.load(v, addr);
    b.add(v, v, one);
    b.store(addr, v);
    b.addi(j, j, 1);
    b.imm(k, per_tx);
    b.blt(j, k, inner);
    b.tx_end();
    b.addi(i, i, 1);
    b.blt(i, n, outer);
    b.halt();
    b.build()
}

const ITERS: u64 = 24;
const PER_TX: u64 = 3;
const POOL: u64 = 8;
const THREADS: usize = 4;

fn build_machine(system: HtmSystem, seed: u64, oracle: bool) -> Machine {
    let prog = contended_counters(ITERS, PER_TX, POOL);
    let mut sys = SystemConfig::small_test();
    sys.core.cores = THREADS;
    let tuning = Tuning {
        check_atomicity: oracle,
        ..Tuning::default()
    };
    let mut m = Machine::new(sys, PolicyConfig::for_system(system), tuning, seed);
    for t in 0..THREADS {
        let mut vm = Vm::new(prog.clone(), seed + t as u64);
        vm.preset_reg(Reg(8), t as u64);
        m.load_thread(t, vm);
    }
    m
}

fn pool_sum(m: &Machine) -> u64 {
    (0..POOL).map(|k| m.inspect_word(Addr(k * 8))).sum()
}

const EXPECTED_SUM: u64 = THREADS as u64 * ITERS * PER_TX;

#[test]
fn empty_plan_is_bit_identical_to_no_plan() {
    for system in [HtmSystem::Chats, HtmSystem::Baseline] {
        let mut plain = build_machine(system, 42, false);
        let plain_stats = plain.run(20_000_000).expect("plain run failed");

        let mut planned = build_machine(system, 42, false);
        planned.set_fault_plan(&FaultPlan::default());
        let planned_stats = planned.run(20_000_000).expect("empty-plan run failed");

        assert_eq!(plain_stats, planned_stats, "{system:?}: stats diverged");
        assert_eq!(
            plain.memory_image(),
            planned.memory_image(),
            "{system:?}: memory diverged"
        );
        assert_eq!(planned.fault_injections(), 0);
    }
}

#[test]
fn watch_only_plan_observes_without_perturbing() {
    let mut plain = build_machine(HtmSystem::Chats, 7, false);
    let plain_stats = plain.run(20_000_000).expect("plain run failed");

    let mut watched = build_machine(HtmSystem::Chats, 7, false);
    let plan = FaultPlan {
        watchdog_horizon: 2_000_000,
        ..FaultPlan::default()
    };
    watched.set_fault_plan(&plan);
    let watched_stats = watched.run(20_000_000).expect("watched run failed");

    assert_eq!(
        plain_stats, watched_stats,
        "watch-only plan perturbed the run"
    );
    assert_eq!(watched.fault_injections(), 0);
}

#[test]
fn shipped_plans_preserve_serializability_on_every_system() {
    let systems = [
        HtmSystem::Baseline,
        HtmSystem::NaiveRs,
        HtmSystem::Chats,
        HtmSystem::Power,
        HtmSystem::Pchats,
        HtmSystem::LevcBeIdealized,
    ];
    for plan in FaultPlan::shipped() {
        for system in systems {
            // The atomicity oracle panics on any serializability break, so
            // a wrong commit under injected chaos fails loudly here.
            let mut m = build_machine(system, 0xFA17 ^ plan.hash(), true);
            m.set_fault_plan(&plan);
            let stats = m
                .run(40_000_000)
                .unwrap_or_else(|e| panic!("{system:?} under '{}': {e}", plan.name));
            assert!(stats.commits > 0, "{system:?} under '{}'", plan.name);
            assert_eq!(
                pool_sum(&m),
                EXPECTED_SUM,
                "{system:?} under '{}': lost or duplicated increments",
                plan.name
            );
        }
    }
}

#[test]
fn abort_storm_injects_and_traces_faults() {
    let mut m = build_machine(HtmSystem::Chats, 3, false);
    m.enable_trace(100_000);
    m.set_fault_plan(&FaultPlan::abort_storm());
    m.run(40_000_000).expect("abort-storm run failed");
    assert!(
        m.fault_injections() > 0,
        "abort storm injected nothing; counts: {:?}",
        m.fault_injection_counts()
    );
    let injected_in_trace = m
        .trace_events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::FaultInjected { .. }))
        .count() as u64;
    assert!(injected_in_trace > 0, "no FaultInjected events in trace");
    assert_eq!(pool_sum(&m), EXPECTED_SUM);
}

#[test]
fn lossy_noc_drops_are_counted_per_kind() {
    let mut m = build_machine(HtmSystem::Pchats, 11, false);
    m.set_fault_plan(&FaultPlan::lossy_noc());
    m.run(40_000_000).expect("lossy-noc run failed");
    let counts = m.fault_injection_counts();
    assert!(!counts.is_empty(), "lossy NoC plan injected nothing");
    let total: u64 = counts.values().sum();
    assert_eq!(total, m.fault_injections());
    assert_eq!(pool_sum(&m), EXPECTED_SUM);
}

/// The directed hang test: dropping validation responses leaves the
/// consumer's `val_req` outstanding forever — there is no retry path for
/// validation probes. Without the watchdog this would spin (or drain into
/// a bare deadlock); with it, the run must end in a structured
/// [`chats_machine::FailureReport`], not a timeout.
#[test]
fn dropped_validation_response_ends_in_failure_report() {
    let mut plan = FaultPlan {
        name: "drop-validation".to_string(),
        watchdog_horizon: 50_000,
        ..FaultPlan::default()
    };
    plan.protocol.drop_validation_data = u64::MAX;
    let mut m = build_machine(HtmSystem::Chats, 5, false);
    m.set_fault_plan(&plan);
    let err = m
        .run(40_000_000)
        .expect_err("every validation response was dropped; the run cannot finish");
    match err {
        SimError::WatchdogStall { report } => {
            assert!(!report.stalled_cores.is_empty());
            assert_eq!(report.horizon, 50_000);
            assert_eq!(report.cores.len(), THREADS);
            // The signature of the injected hang: a stalled core with its
            // validation probe still outstanding.
            assert!(
                report.cores.iter().any(|c| c.val_req.is_some()),
                "no core shows an outstanding validation probe:\n{report}"
            );
            assert!(report.fault_injections > 0);
            assert!(
                !report.recent_events.is_empty(),
                "report carries no trace history"
            );
            let rendered = report.to_string();
            assert!(rendered.contains("no progress within 50000 cycles"));
        }
        other => panic!("expected a watchdog failure report, got: {other}"),
    }
}
