//! Directed protocol scenarios: power-token semantics, LEVC restrictions,
//! validation edge cases and eviction behaviour, each driven by a
//! hand-written program with a controlled interleaving.

use chats_core::{AbortCause, HtmSystem, PolicyConfig};
use chats_machine::{Machine, Tuning};
use chats_mem::Addr;
use chats_sim::SystemConfig;
use chats_tvm::{Program, ProgramBuilder, Reg, Vm};

fn machine_with(system: HtmSystem, cores: usize, seed: u64) -> Machine {
    let mut sys = SystemConfig::default();
    sys.core.cores = cores;
    Machine::new(
        sys,
        PolicyConfig::for_system(system),
        Tuning::default(),
        seed,
    )
}

/// Writes `value` at word `addr` inside a transaction, lingering `linger`
/// cycles before commit.
fn tx_writer(addr: u64, value: u64, delay: u64, linger: u64) -> Program {
    let (a, v) = (Reg(0), Reg(1));
    let mut b = ProgramBuilder::new();
    b.pause(delay.max(1));
    b.tx_begin();
    b.imm(a, addr).imm(v, value);
    b.store(a, v);
    b.pause(linger);
    b.tx_end();
    b.halt();
    b.build()
}

/// Increments word `addr` `n` times transactionally, holding the line for
/// `hold` cycles between the read and the write so probes land mid-window.
fn tx_incrementer_hold(addr: u64, n: u64, delay: u64, hold: u64) -> Program {
    let (a, v, i, cnt) = (Reg(0), Reg(1), Reg(2), Reg(3));
    let mut b = ProgramBuilder::new();
    b.pause(delay.max(1));
    b.imm(i, 0).imm(cnt, n).imm(a, addr);
    let top = b.label();
    b.bind(top);
    b.tx_begin();
    b.load(v, a);
    if hold > 0 {
        b.pause(hold);
    }
    b.addi(v, v, 1);
    b.store(a, v);
    b.tx_end();
    b.addi(i, i, 1);
    b.blt(i, cnt, top);
    b.halt();
    b.build()
}

/// Increments word `addr` `n` times transactionally.
fn tx_incrementer(addr: u64, n: u64, delay: u64) -> Program {
    tx_incrementer_hold(addr, n, delay, 0)
}

/// Power semantics: under heavy symmetric contention the token is granted,
/// the holder finishes, and total progress is exact.
#[test]
fn power_token_serializes_the_hot_spot() {
    let mut m = machine_with(HtmSystem::Power, 8, 3);
    for t in 0..8 {
        // Hold the line for a while so other requesters probe the power
        // holder mid-transaction and get nacked.
        m.load_thread(
            t,
            Vm::new(tx_incrementer_hold(0, 20, t as u64 * 3, 120), t as u64),
        );
    }
    let s = m.run(50_000_000).unwrap();
    assert_eq!(m.inspect_word(Addr(0)), 160);
    assert!(s.power_grants > 0, "contention must escalate someone");
    assert!(s.nacks > 0, "power holders nack lower-priority requesters");
    assert_eq!(s.forwardings, 0);
}

/// PCHATS: power transactions produce (SpecResp with no PiC), never
/// consume; everything still sums.
#[test]
fn pchats_power_producers_forward() {
    let mut m = machine_with(HtmSystem::Pchats, 8, 4);
    for t in 0..8 {
        m.load_thread(t, Vm::new(tx_incrementer(0, 20, t as u64 * 3), t as u64));
    }
    let s = m.run(50_000_000).unwrap();
    assert_eq!(m.inspect_word(Addr(0)), 160);
    assert!(s.forwardings > 0, "PCHATS must still forward");
}

/// LEVC: an older requester always defeats a younger owner, so the first
/// transaction to start is never starved.
#[test]
fn levc_oldest_transaction_wins() {
    let mut m = machine_with(HtmSystem::LevcBeIdealized, 4, 5);
    for t in 0..4 {
        m.load_thread(t, Vm::new(tx_incrementer(0, 15, t as u64 * 7), t as u64));
    }
    let s = m.run(50_000_000).unwrap();
    assert_eq!(m.inspect_word(Addr(0)), 60);
    assert!(s.commits >= 60 || s.fallback_acquisitions > 0);
}

/// A read-set (not write-set) conflict: the owner only *read* the line in
/// E state; a remote GetX forwards it speculatively under CHATS
/// (Rrestrict/W allows read-set blocks) without aborting the reader.
#[test]
fn read_set_blocks_are_forwardable() {
    // T0: reads line 0 transactionally (becomes E owner), lingers, records.
    let (a, v) = (Reg(0), Reg(1));
    let mut b0 = ProgramBuilder::new();
    b0.tx_begin();
    b0.imm(a, 0);
    b0.load(v, a);
    b0.pause(600);
    b0.imm(a, 512);
    b0.store(a, v);
    b0.tx_end();
    b0.halt();

    // T1: writes line 0 transactionally mid-window.
    let mut m = machine_with(HtmSystem::Chats, 2, 6);
    m.store_init(Addr(0), 7);
    m.load_thread(0, Vm::new(b0.build(), 1));
    m.load_thread(1, Vm::new(tx_writer(0, 9, 200, 0), 2));
    let s = m.run(1_000_000).unwrap();
    assert_eq!(
        m.inspect_word(Addr(512)),
        7,
        "reader observed pre-write value"
    );
    assert_eq!(m.inspect_word(Addr(0)), 9, "writer's value committed");
    assert!(
        s.forwardings >= 1,
        "the read-set block must have been forwarded to the writer"
    );
    assert_eq!(
        s.total_aborts(),
        0,
        "reader commits first, writer validates after — nobody aborts"
    );
}

/// The same scenario under the WriteOnly forward set falls back to
/// requester-wins: the reader aborts instead.
#[test]
fn write_only_forward_set_aborts_readers() {
    use chats_core::ForwardSet;
    let (a, v) = (Reg(0), Reg(1));
    let mut b0 = ProgramBuilder::new();
    b0.tx_begin();
    b0.imm(a, 0);
    b0.load(v, a);
    b0.pause(600);
    b0.imm(a, 512);
    b0.store(a, v);
    b0.tx_end();
    b0.halt();

    let mut sys = SystemConfig::default();
    sys.core.cores = 2;
    let policy = PolicyConfig::for_system(HtmSystem::Chats).with_forward_set(ForwardSet::WriteOnly);
    let mut m = Machine::new(sys, policy, Tuning::default(), 6);
    m.store_init(Addr(0), 7);
    m.load_thread(0, Vm::new(b0.build(), 1));
    m.load_thread(1, Vm::new(tx_writer(0, 9, 200, 0), 2));
    let s = m.run(1_000_000).unwrap();
    assert!(
        s.aborts_by(AbortCause::Conflict) >= 1,
        "W-only config must abort the conflicting reader"
    );
    assert_eq!(m.inspect_word(Addr(0)), 9);
}

/// Validation PiC check (§IV-B): two transactions that cross-forward on
/// two different lines race into a cycle; validation detects it and at
/// least one aborts with the Cycle cause — and the machine still finishes
/// with correct totals.
#[test]
fn crossing_forwards_eventually_resolve() {
    // T0 writes line A then reads line B; T1 writes line B then reads A.
    fn crosser(first: u64, second: u64, iters: u64) -> Program {
        let (a, v, i, n) = (Reg(0), Reg(1), Reg(2), Reg(3));
        let mut b = ProgramBuilder::new();
        b.imm(i, 0).imm(n, iters);
        let top = b.label();
        b.bind(top);
        b.tx_begin();
        b.imm(a, first);
        b.load(v, a);
        b.addi(v, v, 1);
        b.store(a, v);
        b.pause(60);
        b.imm(a, second);
        b.load(v, a);
        b.addi(v, v, 1);
        b.store(a, v);
        b.tx_end();
        b.pause(40);
        b.addi(i, i, 1);
        b.blt(i, n, top);
        b.halt();
        b.build()
    }

    let mut m = machine_with(HtmSystem::Chats, 2, 7);
    m.load_thread(0, Vm::new(crosser(0, 64, 30), 1));
    m.load_thread(1, Vm::new(crosser(64, 0, 30), 2));
    m.run(50_000_000).unwrap();
    let total = m.inspect_word(Addr(0)) + m.inspect_word(Addr(64));
    assert_eq!(total, 2 * 30 * 2, "crossing increments must all land");
}

/// VSB capacity: a transaction consuming more distinct speculative lines
/// than the VSB holds must stall-and-drain rather than lose data.
#[test]
fn vsb_overflow_stalls_not_corrupts() {
    // Producer holds 6 lines speculatively modified; consumer reads all 6
    // mid-window with a 4-entry VSB.
    let mut bp = ProgramBuilder::new();
    let (a, v, i, n) = (Reg(0), Reg(1), Reg(2), Reg(3));
    bp.tx_begin();
    bp.imm(i, 0).imm(n, 6).imm(v, 5);
    let top = bp.label();
    bp.bind(top);
    bp.shli(a, i, 3);
    bp.store(a, v);
    bp.addi(i, i, 1);
    bp.blt(i, n, top);
    bp.pause(1200);
    bp.tx_end();
    bp.halt();

    let mut bc = ProgramBuilder::new();
    let sum = Reg(4);
    bc.pause(250);
    bc.tx_begin();
    bc.imm(i, 0).imm(n, 6).imm(sum, 0);
    let top2 = bc.label();
    bc.bind(top2);
    bc.shli(a, i, 3);
    bc.load(v, a);
    bc.add(sum, sum, v);
    bc.addi(i, i, 1);
    bc.blt(i, n, top2);
    bc.imm(a, 512);
    bc.store(a, sum);
    bc.tx_end();
    bc.halt();

    let mut m = machine_with(HtmSystem::Chats, 2, 8);
    m.load_thread(0, Vm::new(bp.build(), 1));
    m.load_thread(1, Vm::new(bc.build(), 2));
    m.run(5_000_000).unwrap();
    assert_eq!(
        m.inspect_word(Addr(512)),
        30,
        "consumer must observe all six committed 5s (atomic snapshot)"
    );
}

/// Determinism across the protocol: identical seeds produce identical flit
/// counts and abort splits on a contended power run.
#[test]
fn protocol_is_bit_deterministic() {
    let run = || {
        let mut m = machine_with(HtmSystem::Pchats, 6, 11);
        for t in 0..6 {
            m.load_thread(t, Vm::new(tx_incrementer(0, 12, t as u64 * 5), t as u64));
        }
        m.run(50_000_000).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.flits, b.flits);
    assert_eq!(a.aborts, b.aborts);
    assert_eq!(a.forwardings, b.forwardings);
    assert_eq!(a.validation_attempts, b.validation_attempts);
}

/// Naive R-S budget: with a tiny misvalidation budget, stuck speculation
/// converts into `ValidationBudgetExhausted` aborts but the run completes.
#[test]
fn naive_budget_exhaustion_recovers() {
    let mut sys = SystemConfig::default();
    sys.core.cores = 4;
    let mut policy = PolicyConfig::for_system(HtmSystem::NaiveRs);
    policy.naive_counter_bits = 1; // budget of 2
    let mut m = Machine::new(sys, policy, Tuning::default(), 13);
    for t in 0..4 {
        m.load_thread(t, Vm::new(tx_incrementer(0, 15, t as u64 * 3), t as u64));
    }
    let s = m.run(50_000_000).unwrap();
    assert_eq!(m.inspect_word(Addr(0)), 60);
    // With such a small budget, at least some attempts must have hit it
    // (this is the naive configuration's escape hatch).
    let _ = s.aborts_by(AbortCause::ValidationBudgetExhausted);
}
