//! Randomized whole-machine serializability: arbitrary small contention
//! configurations and seeds, every HTM system — committed increments must
//! always sum exactly.

use chats_core::{HtmSystem, PolicyConfig};
use chats_machine::{Machine, Tuning};
use chats_mem::Addr;
use chats_sim::SystemConfig;
use chats_tvm::{ProgramBuilder, Reg, Vm};
use proptest::prelude::*;

/// Each thread runs `iters` transactions, each incrementing `per_tx`
/// random counters from a pool of `pool` lines (pool is a power of two).
fn torture_program(iters: u64, per_tx: u64, pool: u64) -> chats_tvm::Program {
    let (i, n, j, k, addr, v, bound) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4), Reg(5), Reg(6));
    let mut b = ProgramBuilder::new();
    b.imm(i, 0).imm(n, iters);
    let outer = b.label();
    b.bind(outer);
    b.tx_begin();
    b.imm(j, 0);
    let inner = b.label();
    b.bind(inner);
    b.imm(bound, pool);
    b.rand(k, bound);
    b.shli(addr, k, 3);
    b.load(v, addr);
    b.addi(v, v, 1);
    b.store(addr, v);
    b.addi(j, j, 1);
    b.imm(k, per_tx);
    b.blt(j, k, inner);
    b.tx_end();
    b.pause(30);
    b.addi(i, i, 1);
    b.blt(i, n, outer);
    b.halt();
    b.build()
}

fn run_case(system: HtmSystem, threads: usize, iters: u64, per_tx: u64, pool: u64, seed: u64) {
    let prog = torture_program(iters, per_tx, pool);
    let mut sys = SystemConfig::small_test();
    sys.core.cores = threads;
    let tuning = Tuning {
        check_atomicity: true,
        ..Tuning::default()
    };
    let mut m = Machine::new(sys, PolicyConfig::for_system(system), tuning, seed);
    for t in 0..threads {
        m.load_thread(t, Vm::new(prog.clone(), seed ^ (t as u64) << 7));
    }
    m.run(100_000_000)
        .unwrap_or_else(|e| panic!("{system:?} t={threads} seed={seed}: {e}"));
    let total: u64 = (0..pool).map(|l| m.inspect_word(Addr(l * 8))).sum();
    let expect = threads as u64 * iters * per_tx;
    assert_eq!(
        total, expect,
        "{system:?} threads={threads} iters={iters} per_tx={per_tx} pool={pool} seed={seed}"
    );
}

fn system_strategy() -> impl Strategy<Value = HtmSystem> {
    prop_oneof![
        Just(HtmSystem::Baseline),
        Just(HtmSystem::NaiveRs),
        Just(HtmSystem::Chats),
        Just(HtmSystem::Power),
        Just(HtmSystem::Pchats),
        Just(HtmSystem::LevcBeIdealized),
    ]
}

proptest! {
    // Whole-machine cases are comparatively expensive; 48 cases × ~1 ms
    // keeps this test snappy while covering the space.
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_contention_is_serializable(
        system in system_strategy(),
        threads in 2usize..5,
        iters in 5u64..25,
        per_tx in 1u64..4,
        pool_log in 1u32..4,
        seed in any::<u64>(),
    ) {
        run_case(system, threads, iters, per_tx, 1 << pool_log, seed);
    }
}
