//! Randomized whole-machine serializability: arbitrary small contention
//! configurations and seeds, every HTM system — committed increments must
//! always sum exactly.

use chats_core::{HtmSystem, PolicyConfig};
use chats_machine::{Machine, Tuning};
use chats_mem::Addr;
use chats_sim::SystemConfig;
use chats_tvm::{gen, Vm};
use proptest::prelude::*;

fn run_case(system: HtmSystem, threads: usize, iters: u64, per_tx: u64, pool: u64, seed: u64) {
    let kernel = gen::torture(iters, per_tx, pool);
    let mut sys = SystemConfig::small_test();
    sys.core.cores = threads;
    let tuning = Tuning {
        check_atomicity: true,
        ..Tuning::default()
    };
    let mut m = Machine::new(sys, PolicyConfig::for_system(system), tuning, seed);
    for t in 0..threads {
        m.load_thread(t, Vm::new(kernel.program.clone(), seed ^ (t as u64) << 7));
    }
    m.run(100_000_000)
        .unwrap_or_else(|e| panic!("{system:?} t={threads} seed={seed}: {e}"));
    let total: u64 = kernel
        .counters
        .iter()
        .map(|&w| m.inspect_word(Addr(w)))
        .sum();
    let expect = threads as u64 * kernel.per_thread;
    assert_eq!(
        total, expect,
        "{system:?} threads={threads} iters={iters} per_tx={per_tx} pool={pool} seed={seed}"
    );
}

fn system_strategy() -> impl Strategy<Value = HtmSystem> {
    prop_oneof![
        Just(HtmSystem::Baseline),
        Just(HtmSystem::NaiveRs),
        Just(HtmSystem::Chats),
        Just(HtmSystem::Power),
        Just(HtmSystem::Pchats),
        Just(HtmSystem::LevcBeIdealized),
    ]
}

proptest! {
    // Whole-machine cases are comparatively expensive; 48 cases × ~1 ms
    // keeps this test snappy while covering the space.
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_contention_is_serializable(
        system in system_strategy(),
        threads in 2usize..5,
        iters in 5u64..25,
        per_tx in 1u64..4,
        pool_log in 1u32..4,
        seed in any::<u64>(),
    ) {
        run_case(system, threads, iters, per_tx, 1 << pool_log, seed);
    }
}
