//! Regression tests for the design-choice ablations: each disabled
//! mechanism must still be *correct* (serializable) and must cost
//! performance on chain-heavy workloads — otherwise the mechanism would be
//! dead weight.

use chats_core::{Ablation, HtmSystem, PolicyConfig};
use chats_machine::{Machine, Tuning};
use chats_mem::Addr;
use chats_sim::SystemConfig;
use chats_tvm::{ProgramBuilder, Reg, Vm};

/// A chain-friendly kernel: every thread repeatedly RMWs one of two hot
/// lines, so long chains form under full CHATS.
fn run(ablation: Ablation, seed: u64) -> (u64, u64, chats_stats::RunStats) {
    let (a, v, i, n, bound) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4));
    let mut b = ProgramBuilder::new();
    b.imm(i, 0).imm(n, 30);
    let top = b.label();
    b.bind(top);
    b.tx_begin();
    b.imm(bound, 2);
    b.rand(a, bound);
    b.shli(a, a, 3);
    b.load(v, a);
    b.addi(v, v, 1);
    b.store(a, v);
    b.tx_end();
    b.pause(25);
    b.addi(i, i, 1);
    b.blt(i, n, top);
    b.halt();
    let prog = b.build();

    let mut sys = SystemConfig::small_test();
    sys.core.cores = 4;
    let policy = PolicyConfig::for_system(HtmSystem::Chats).with_ablation(ablation);
    let mut m = Machine::new(sys, policy, Tuning::default(), seed);
    for t in 0..4 {
        m.load_thread(t, Vm::new(prog.clone(), seed + t as u64));
    }
    let s = m.run(50_000_000).unwrap();
    let total = m.inspect_word(Addr(0)) + m.inspect_word(Addr(8));
    (total, s.cycles, s)
}

#[test]
fn ablated_variants_stay_serializable() {
    for ablation in [
        Ablation::default(),
        Ablation {
            no_pic_overtake: true,
            single_link_chains: false,
        },
        Ablation {
            no_pic_overtake: false,
            single_link_chains: true,
        },
        Ablation {
            no_pic_overtake: true,
            single_link_chains: true,
        },
    ] {
        let (total, _, _) = run(ablation, 9);
        assert_eq!(total, 4 * 30, "{ablation:?} lost updates");
    }
}

/// On a chain-heavy kernel (8 threads hammering 2 hot lines with a hold
/// window), the single-link restriction must curtail forwarding and cost
/// time — chains longer than one link are where CHATS earns its keep.
#[test]
fn single_link_restriction_curtails_chains() {
    fn run_chainy(ablation: Ablation, seed: u64) -> chats_stats::RunStats {
        let (a, v, i, n, bound) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4));
        let mut b = ProgramBuilder::new();
        b.imm(i, 0).imm(n, 25);
        let top = b.label();
        b.bind(top);
        b.tx_begin();
        b.imm(bound, 2);
        b.rand(a, bound);
        b.shli(a, a, 3);
        b.load(v, a);
        b.pause(60); // hold the line: chains form in this window
        b.addi(v, v, 1);
        b.store(a, v);
        b.tx_end();
        b.addi(i, i, 1);
        b.blt(i, n, top);
        b.halt();
        let prog = b.build();

        let mut sys = SystemConfig::small_test();
        sys.core.cores = 8;
        let policy = PolicyConfig::for_system(HtmSystem::Chats).with_ablation(ablation);
        let mut m = Machine::new(sys, policy, Tuning::default(), seed);
        for t in 0..8 {
            m.load_thread(t, Vm::new(prog.clone(), seed + t as u64));
        }
        let s = m.run(100_000_000).unwrap();
        let total = m.inspect_word(Addr(0)) + m.inspect_word(Addr(8));
        assert_eq!(total, 8 * 25, "{ablation:?} lost updates");
        s
    }

    // Individual seeds are noisy (retries re-forward), so aggregate.
    let mut full_cycles = 0u64;
    let mut single_cycles = 0u64;
    for seed in 21..27 {
        full_cycles += run_chainy(Ablation::default(), seed).cycles;
        single_cycles += run_chainy(
            Ablation {
                no_pic_overtake: false,
                single_link_chains: true,
            },
            seed,
        )
        .cycles;
    }
    assert!(
        full_cycles <= single_cycles,
        "full CHATS must not lose to its single-link ablation in aggregate: {full_cycles} > {single_cycles}"
    );
}

#[test]
fn chains_longer_than_one_pay_off() {
    let (_, full_cycles, _) = run(Ablation::default(), 9);
    let (_, single_cycles, _) = run(
        Ablation {
            no_pic_overtake: false,
            single_link_chains: true,
        },
        9,
    );
    assert!(
        full_cycles <= single_cycles,
        "full CHATS must not lose to its single-link ablation ({full_cycles} > {single_cycles})"
    );
}
