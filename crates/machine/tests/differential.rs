//! Cross-policy differential testing: CHATS, requester-wins and naive
//! requester-stalls must be *observationally equivalent* — not just "sums
//! add up", but bit-identical committed memory images.
//!
//! Why this is a legitimate oracle and not an over-constraint: each
//! thread's VM rng is part of its transactional snapshot, so an aborted
//! transaction re-draws the same random addresses on retry. A thread's
//! committed effect is therefore a pure function of `(program, seed)` —
//! a fixed multiset of counter increments — and increments commute, so
//! every serializable policy must converge to the same final image no
//! matter how it ordered, aborted, forwarded or chained the
//! transactions. Any divergence is a lost or duplicated update in one of
//! the policies.

use chats_core::{HtmSystem, PolicyConfig};
use chats_machine::{Machine, Tuning};
use chats_sim::SystemConfig;
use chats_tvm::{gen, Vm};
use std::collections::BTreeMap;

/// The policies under differential comparison. Forwarding-heavy CHATS
/// against the two non-forwarding references: eager requester-wins and
/// naive requester-stalls.
const SYSTEMS: [HtmSystem; 3] = [HtmSystem::Chats, HtmSystem::Baseline, HtmSystem::NaiveRs];

/// Runs `kernel` on `threads` cores under `system` and returns the
/// committed memory image plus total committed increments.
fn run_image(
    system: HtmSystem,
    kernel: &gen::Kernel,
    threads: usize,
    seed: u64,
) -> (BTreeMap<u64, u64>, u64) {
    let mut sys = SystemConfig::small_test();
    sys.core.cores = threads;
    let tuning = Tuning {
        check_atomicity: true,
        ..Tuning::default()
    };
    let mut m = Machine::new(sys, PolicyConfig::for_system(system), tuning, seed);
    for t in 0..threads {
        m.load_thread(t, Vm::new(kernel.program.clone(), seed ^ ((t as u64) << 7)));
    }
    m.run(100_000_000)
        .unwrap_or_else(|e| panic!("{system:?} threads={threads} seed={seed}: {e}"));
    assert_eq!(
        m.violations(),
        &[],
        "{system:?} seed={seed}: oracle violations"
    );
    let image = m.memory_image();
    let total = kernel
        .counters
        .iter()
        .map(|&w| image.get(&w).copied().unwrap_or(0))
        .sum();
    (image, total)
}

/// All systems must commit the exact sum and converge to the identical
/// memory image.
fn assert_convergence(label: &str, kernel: &gen::Kernel, threads: usize, seed: u64) {
    let expect = threads as u64 * kernel.per_thread;
    let (reference, ref_total) = run_image(SYSTEMS[0], kernel, threads, seed);
    assert_eq!(
        ref_total, expect,
        "{label}: {:?} threads={threads} seed={seed} lost/duplicated increments",
        SYSTEMS[0]
    );
    for &system in &SYSTEMS[1..] {
        let (image, total) = run_image(system, kernel, threads, seed);
        assert_eq!(
            total, expect,
            "{label}: {system:?} threads={threads} seed={seed} lost/duplicated increments"
        );
        assert_eq!(
            image, reference,
            "{label}: {system:?} diverges from {:?} (threads={threads} seed={seed})",
            SYSTEMS[0]
        );
    }
}

#[test]
fn torture_images_converge_across_policies() {
    // A small grid over contention shape: few hot lines (heavy chaining
    // under CHATS) through a spread pool (mostly disjoint commits).
    for &(threads, iters, per_tx, pool, seed) in &[
        (2, 20, 2, 1, 0xD1FF_0001u64),
        (3, 15, 3, 2, 0xD1FF_0002),
        (4, 12, 2, 4, 0xD1FF_0003),
        (4, 10, 4, 8, 0xD1FF_0004),
        (3, 25, 1, 2, 0xD1FF_0005),
    ] {
        let kernel = gen::torture(iters, per_tx, pool);
        assert_convergence("torture", &kernel, threads, seed);
    }
}

#[test]
fn chain_ladder_images_converge_across_policies() {
    // Every thread climbs the same ascending ladder, the worst case for
    // forwarding chains and the best chance for CHATS to diverge from
    // the non-forwarding baselines if validation were ever skipped.
    for &(threads, iters, depth, seed) in &[
        (2, 20, 3, 0xADDE_0001u64),
        (3, 15, 4, 0xADDE_0002),
        (4, 12, 2, 0xADDE_0003),
    ] {
        let kernel = gen::chain_ladder(iters, depth);
        assert_convergence("chain_ladder", &kernel, threads, seed);
    }
}

#[test]
fn observer_images_converge_across_policies() {
    // Read-only scans interleaved with increments: exercises forwarding
    // to pure readers and the atomicity oracle's read-set checks.
    for &(threads, iters, pool, seed) in &[(3, 15, 2, 0x0B5E_0001u64), (4, 10, 4, 0x0B5E_0002)] {
        let kernel = gen::observer(iters, pool);
        assert_convergence("observer", &kernel, threads, seed);
    }
}

#[test]
fn differential_is_deterministic() {
    // The comparison itself must be reproducible: the same (kernel,
    // threads, seed) yields the same image on repeated runs.
    let kernel = gen::torture(10, 2, 4);
    let (a, _) = run_image(HtmSystem::Chats, &kernel, 3, 42);
    let (b, _) = run_image(HtmSystem::Chats, &kernel, 3, 42);
    assert_eq!(a, b);
}
