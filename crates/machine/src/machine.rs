//! The [`Machine`]: construction, event loop and messaging fabric.

use crate::core_state::CoreState;
use crate::dir::Directory;
use crate::msg::{CoreMsg, DirMsg, Event, Request};
use crate::trace::{Trace, TraceEvent};
use chats_core::retry::FallbackLock;
use chats_core::{PolicyConfig, PowerToken, TimestampSource};
use chats_mem::{Addr, CoherenceState};
use chats_noc::{Crossbar, MsgClass, NodeId};
use chats_sim::{Cycle, EventQueue, SimRng, SystemConfig};
use chats_stats::RunStats;
use chats_tvm::Vm;
use std::error::Error;
use std::fmt;

/// Machine-level tuning knobs not specified by Table I/II: backoff and
/// stall pacing. These are identical across HTM systems so comparisons stay
/// fair.
#[derive(Debug, Clone, Copy)]
pub struct Tuning {
    /// Base of the randomized linear backoff applied between transaction
    /// retries (`backoff_base * attempts + rand(0..backoff_base * attempts)`).
    pub backoff_base: u64,
    /// Delay before re-issuing a nacked/stalled demand request.
    pub stall_delay: u64,
    /// Gap between successive validation probes while a commit is pending.
    pub commit_validation_gap: u64,
    /// Upper bound on core-local cycles executed per event (bounds the
    /// timing skew of burst execution).
    pub compute_slice_max: u64,
    /// Enable the atomicity oracle: every commit is checked against the
    /// §III-C serializability criterion (each transactionally read word
    /// equals the committed value at the commit instant). Used by the test
    /// suite; off by default.
    pub check_atomicity: bool,
    /// Debug: log every protocol action touching this line (printed into
    /// oracle-violation panics).
    pub watch_line: Option<chats_mem::LineAddr>,
}

impl Default for Tuning {
    fn default() -> Tuning {
        Tuning {
            backoff_base: 16,
            stall_delay: 24,
            commit_validation_gap: 16,
            compute_slice_max: 256,
            check_atomicity: false,
            watch_line: None,
        }
    }
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The run exceeded its cycle budget — a livelock or a budget set too
    /// low.
    Timeout {
        /// Cycle at which the simulation gave up.
        at_cycle: u64,
    },
    /// The event queue drained while threads were still running: a lost
    /// wakeup in the protocol (a simulator bug, never a workload issue).
    Deadlock {
        /// Cycle at which events ran out.
        at_cycle: u64,
        /// Diagnostic dump of core states.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Timeout { at_cycle } => {
                write!(
                    f,
                    "simulation exceeded its cycle budget at cycle {at_cycle}"
                )
            }
            SimError::Deadlock { at_cycle, detail } => {
                write!(
                    f,
                    "event queue drained with live threads at cycle {at_cycle}:\n{detail}"
                )
            }
        }
    }
}

impl Error for SimError {}

/// The whole simulated multicore.
///
/// See the [crate docs](crate) for an end-to-end example.
pub struct Machine {
    pub(crate) cfg: SystemConfig,
    pub(crate) policy: PolicyConfig,
    pub(crate) tuning: Tuning,
    pub(crate) clock: Cycle,
    pub(crate) events: EventQueue<Event>,
    pub(crate) xbar: Crossbar,
    pub(crate) dir: Directory,
    pub(crate) cores: Vec<CoreState>,
    pub(crate) lock: FallbackLock,
    pub(crate) token: PowerToken,
    pub(crate) ts_source: TimestampSource,
    pub(crate) rng: SimRng,
    pub(crate) stats: RunStats,
    pub(crate) halted: usize,
    pub(crate) trace: Trace,
    pub(crate) watch_log: Vec<String>,
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("system", &self.policy.system)
            .field("cores", &self.cores.len())
            .field("clock", &self.clock)
            .finish()
    }
}

impl Machine {
    /// Builds a machine with `sys` hardware, `policy` HTM system and
    /// machine `tuning`, seeded with `seed`.
    pub fn new(sys: SystemConfig, policy: PolicyConfig, tuning: Tuning, seed: u64) -> Machine {
        let n = sys.core.cores;
        let power_threshold = if policy.system.uses_power_token() {
            Some(policy.power_threshold)
        } else {
            None
        };
        let cores = (0..n)
            .map(|_| {
                let mut c = CoreState::new(
                    sys.mem.l1_sets,
                    sys.mem.l1_ways,
                    policy.vsb_size,
                    policy.naive_counter_bits,
                    policy.retries,
                    power_threshold,
                );
                if tuning.check_atomicity {
                    c.oracle.enable();
                }
                c
            })
            .collect();
        Machine {
            cfg: sys,
            policy,
            tuning,
            clock: Cycle::ZERO,
            events: EventQueue::new(),
            xbar: Crossbar::new(sys.noc, n + 1),
            dir: Directory::new(),
            cores,
            lock: FallbackLock::new(),
            token: PowerToken::new(),
            ts_source: TimestampSource::new(),
            rng: SimRng::seed_from(seed),
            stats: RunStats::default(),
            halted: n,
            trace: Trace::default(),
            watch_log: Vec::new(),
        }
    }

    /// Installs a thread on `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range or already loaded.
    pub fn load_thread(&mut self, core: usize, vm: Vm) {
        let c = &mut self.cores[core];
        assert!(c.vm.is_none(), "core {core} already has a thread");
        c.vm = Some(vm);
        c.halted = false;
        self.halted -= 1;
    }

    /// Writes an initial value into simulated memory before the run
    /// (building the workload's data structures).
    pub fn store_init(&mut self, addr: Addr, value: u64) {
        self.dir.store.write_word(addr, value);
    }

    /// Reads a word of memory as an outside observer would *after* the run:
    /// a `Modified` (non-speculative) copy in some L1 wins over the backing
    /// store.
    #[must_use]
    pub fn inspect_word(&self, addr: Addr) -> u64 {
        let line = addr.line();
        for c in &self.cores {
            if let Some(e) = c.l1.lookup(line) {
                if e.state == CoherenceState::Modified && !e.sm && !e.spec_received {
                    return e.data.read(addr);
                }
            }
        }
        self.dir.store.read_word(addr)
    }

    /// The active policy configuration.
    #[must_use]
    pub fn policy(&self) -> &PolicyConfig {
        &self.policy
    }

    /// The hardware configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The statistics gathered so far (complete after [`Machine::run`]).
    #[must_use]
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Enables protocol tracing; at most `limit` events are kept.
    /// Call before [`Machine::run`]. See [`TraceEvent`].
    pub fn enable_trace(&mut self, limit: usize) {
        self.trace.enable(limit);
    }

    /// The recorded protocol trace (empty unless tracing was enabled).
    #[must_use]
    pub fn trace_events(&self) -> &[TraceEvent] {
        self.trace.events()
    }

    /// `true` when `line` is under watch (guard before formatting).
    pub(crate) fn watching(&self, line: chats_mem::LineAddr) -> bool {
        self.tuning.watch_line == Some(line) && self.watch_log.len() < 10_000
    }

    /// Appends a pre-formatted watch-log entry.
    pub(crate) fn watch_push(&mut self, msg: String) {
        let at = self.clock;
        self.watch_log.push(format!("[{at}] {msg}"));
    }

    /// The watch log accumulated for `Tuning::watch_line`.
    #[doc(hidden)]
    #[must_use]
    pub fn watch_log(&self) -> &[String] {
        &self.watch_log
    }

    /// Diagnostic description of one line's global state (directory view
    /// plus every cached copy), for protocol debugging.
    #[doc(hidden)]
    #[must_use]
    pub fn describe_line(&self, line: chats_mem::LineAddr) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "dir[{line}] = {:?}", self.dir.state_of(line));
        let _ = writeln!(s, "store[{line}] = {:?}", self.dir.store.read_line(line));
        for (i, c) in self.cores.iter().enumerate() {
            if let Some(e) = c.l1.lookup(line) {
                let _ = writeln!(
                    s,
                    "core{i}: {:?} sm={} spec={} data={:?} in_sig={} vsb={} mode={:?}",
                    e.state,
                    e.sm,
                    e.spec_received,
                    e.data,
                    c.read_sig.contains(line),
                    c.vsb.contains(line),
                    c.mode,
                );
            } else if c.read_sig.contains(line) {
                let _ = writeln!(s, "core{i}: no copy, in read signature, mode={:?}", c.mode);
            }
        }
        s
    }

    /// One-line status per core plus directory summary, for diagnosing
    /// stuck simulations.
    #[doc(hidden)]
    #[must_use]
    pub fn debug_dump(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "clock={} events={} halted={}",
            self.clock,
            self.events.len(),
            self.halted
        );
        for (i, c) in self.cores.iter().enumerate() {
            let _ = writeln!(
                s,
                "core{i}: halted={} mode={:?} wait={:?} pend={:?} val={:?} vsb={} epoch={} cp={}",
                c.halted,
                c.mode,
                c.waiting,
                c.pending_mem.map(|p| (p.line, p.getx)),
                c.val_req,
                c.vsb.len(),
                c.epoch,
                c.commit_pending,
            );
        }
        s
    }

    /// Runs to completion (every thread halted) or to `max_cycles`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Timeout`] if any thread is still running at
    /// `max_cycles`.
    pub fn run(&mut self, max_cycles: u64) -> Result<RunStats, SimError> {
        for core in 0..self.cores.len() {
            if self.cores[core].vm.is_some() && !self.cores[core].halted {
                let epoch = self.cores[core].epoch;
                // Slight stagger breaks artificial lockstep between threads.
                self.events
                    .push(Cycle(core as u64), Event::CoreStep { core, epoch });
            }
        }
        while let Some((t, ev)) = self.events.pop() {
            if t.0 > max_cycles {
                return Err(SimError::Timeout { at_cycle: t.0 });
            }
            self.clock = t;
            self.dispatch(ev);
            if self.halted == self.cores.len() {
                break;
            }
        }
        if self.halted != self.cores.len() {
            return Err(SimError::Deadlock {
                at_cycle: self.clock.0,
                detail: self.debug_dump(),
            });
        }
        self.finish_stats();
        Ok(self.stats.clone())
    }

    fn finish_stats(&mut self) {
        self.stats.cycles = self.clock.0;
        self.stats.flits = self.xbar.flits_sent();
        self.stats.control_messages = self.xbar.control_messages();
        self.stats.data_messages = self.xbar.data_messages();
        self.stats.instructions = self
            .cores
            .iter()
            .filter_map(|c| c.vm.as_ref())
            .map(|v| v.retired())
            .sum();
    }

    fn dispatch(&mut self, ev: Event) {
        match ev {
            Event::CoreStep { core, epoch } => {
                if self.cores[core].epoch == epoch && !self.cores[core].halted {
                    self.core_step(core);
                }
            }
            Event::RetryTx { core, epoch } => {
                if self.cores[core].epoch == epoch && !self.cores[core].halted {
                    self.retry_tx(core);
                }
            }
            Event::MemRetry { core, epoch } => {
                if self.cores[core].epoch == epoch {
                    self.mem_retry(core);
                }
            }
            Event::ValidationTick { core, epoch } => {
                if self.cores[core].epoch == epoch {
                    self.validation_tick(core);
                }
            }
            Event::DirRecv(msg) => self.dir_recv(msg),
            Event::CoreRecv { core, msg } => self.core_recv(core, msg),
        }
    }

    // ---- messaging fabric ---------------------------------------------

    pub(crate) fn dir_node(&self) -> NodeId {
        NodeId(self.cores.len())
    }

    /// Sends a message from a core to the directory, injecting at
    /// `clock + delay`.
    pub(crate) fn send_to_dir(
        &mut self,
        from_core: usize,
        class: MsgClass,
        msg: DirMsg,
        delay: u64,
    ) {
        let at = self.clock + delay;
        let arrive = self
            .xbar
            .send(at, NodeId(from_core), self.dir_node(), class);
        self.events.push(arrive, Event::DirRecv(msg));
    }

    /// Sends a message from the directory to a core, injecting at
    /// `clock + delay`.
    pub(crate) fn dir_send_to_core(
        &mut self,
        core: usize,
        class: MsgClass,
        msg: CoreMsg,
        delay: u64,
    ) {
        let at = self.clock + delay;
        let arrive = self.xbar.send(at, self.dir_node(), NodeId(core), class);
        self.events.push(arrive, Event::CoreRecv { core, msg });
    }

    /// Sends a message from one core's cache to another core (3-hop data
    /// responses, SpecResps, nacks).
    pub(crate) fn core_send_to_core(
        &mut self,
        from: usize,
        to: usize,
        class: MsgClass,
        msg: CoreMsg,
        delay: u64,
    ) {
        let at = self.clock + delay;
        let arrive = self.xbar.send(at, NodeId(from), NodeId(to), class);
        self.events.push(arrive, Event::CoreRecv { core: to, msg });
    }

    /// Issues the demand request described by the core's `pending_mem`.
    pub(crate) fn issue_pending_request(&mut self, core: usize, delay: u64) {
        let c = &self.cores[core];
        let pm = c.pending_mem.expect("no pending memory op to issue");
        let req = Request {
            core,
            line: pm.line,
            getx: pm.getx,
            pic: c.pic.pic,
            power: c.is_power,
            non_tx: !c.in_tx(),
            levc_ts: c.levc_ts,
            levc_consumed: c.levc.has_consumed,
            epoch: c.epoch,
        };
        self.send_to_dir(core, MsgClass::Control, DirMsg::Request(req), delay);
    }
}
