//! The [`Machine`]: construction, event loop and messaging fabric.

use crate::core_state::CoreState;
use crate::dir::Directory;
use crate::msg::{CoreMsg, DirMsg, Event, Request};
use crate::trace::{RingSink, Trace, TraceEvent, TraceSink};
use chats_core::retry::FallbackLock;
use chats_core::{PolicyConfig, PowerToken, TimestampSource};
use chats_mem::{Addr, CoherenceState, WORDS_PER_LINE};
use chats_noc::{Crossbar, MsgClass, NodeId};
use chats_sim::{
    Cycle, DecisionKind, DecisionPoint, DecisionRecord, EventQueue, SimRng, SystemConfig,
};
use chats_stats::RunStats;
use chats_tvm::Vm;
use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

/// Machine-level tuning knobs not specified by Table I/II: backoff and
/// stall pacing. These are identical across HTM systems so comparisons stay
/// fair.
#[derive(Debug, Clone, Copy)]
pub struct Tuning {
    /// Base of the randomized linear backoff applied between transaction
    /// retries (`backoff_base * attempts + rand(0..backoff_base * attempts)`).
    pub backoff_base: u64,
    /// Delay before re-issuing a nacked/stalled demand request.
    pub stall_delay: u64,
    /// Gap between successive validation probes while a commit is pending.
    pub commit_validation_gap: u64,
    /// Upper bound on core-local cycles executed per event (bounds the
    /// timing skew of burst execution).
    pub compute_slice_max: u64,
    /// Enable the atomicity oracle: every commit is checked against the
    /// §III-C serializability criterion (each transactionally read word
    /// equals the committed value at the commit instant). Used by the test
    /// suite; off by default.
    pub check_atomicity: bool,
    /// Oracle *record* mode: instead of panicking on the first violation,
    /// accumulate [`Violation`]s on the machine (see
    /// [`Machine::violations`]) and keep running. Also arms the online
    /// opacity check: every non-speculative-lineage transactional read is
    /// compared against the committed value at the read instant, so aborted
    /// attempts that observed inconsistent data are flagged even though
    /// they never reach the commit check. Requires `check_atomicity`.
    pub oracle_record: bool,
    /// Debug: log every protocol action touching this line (printed into
    /// oracle-violation panics).
    pub watch_line: Option<chats_mem::LineAddr>,
    /// Planted-bug switch for the checking harness: skip the value
    /// comparison on validation responses, silently "validating" every
    /// speculated line. This breaks the protocol's §III-A guarantee on
    /// purpose — `chats-check`'s acceptance test flips it to prove the
    /// oracle catches the resulting atomicity violations. Never set this
    /// outside tests.
    #[doc(hidden)]
    pub debug_skip_validation: bool,
}

impl Default for Tuning {
    fn default() -> Tuning {
        Tuning {
            backoff_base: 16,
            stall_delay: 24,
            commit_validation_gap: 16,
            compute_slice_max: 256,
            check_atomicity: false,
            oracle_record: false,
            watch_line: None,
            debug_skip_validation: false,
        }
    }
}

/// A serializability/opacity violation detected by the oracle in record
/// mode ([`Tuning::oracle_record`]). Each violation is a protocol bug,
/// never a workload condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Violation {
    /// A committed transaction's read-only observation did not equal the
    /// committed value at the commit instant (§III-C atomicity).
    AtomicityAtCommit {
        /// Core that committed.
        core: usize,
        /// Word address.
        addr: u64,
        /// Value the transaction observed.
        observed: u64,
        /// Committed value at the commit instant.
        committed: u64,
        /// Cycle of the commit.
        at: u64,
    },
    /// A running transaction observed, through a non-speculative lineage
    /// (no forwarding involved), a value different from the committed one —
    /// an inconsistent snapshot that even an aborted attempt must never see
    /// (opacity).
    InconsistentRead {
        /// Core that read.
        core: usize,
        /// Word address.
        addr: u64,
        /// Value the transaction observed.
        observed: u64,
        /// Committed value at the read instant.
        committed: u64,
        /// Cycle of the read.
        at: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::AtomicityAtCommit {
                core,
                addr,
                observed,
                committed,
                at,
            } => write!(
                f,
                "atomicity violated at commit on core {core} at cycle {at}: \
                 word {addr:#x} was read as {observed} but the committed value is {committed}"
            ),
            Violation::InconsistentRead {
                core,
                addr,
                observed,
                committed,
                at,
            } => write!(
                f,
                "inconsistent read on core {core} at cycle {at}: word {addr:#x} \
                 observed as {observed} while the committed value is {committed}"
            ),
        }
    }
}

/// A schedule hook: given a decision point and its fan-out, returns the
/// choice to take (`0` = default; out-of-range choices clamp). Installed
/// via [`Machine::set_decision_hook`]; with no hook installed the machine
/// takes choice 0 everywhere without recording anything, and behaves
/// bit-identically to builds that predate decision points.
pub type DecisionHook = Box<dyn FnMut(&DecisionPoint, u32) -> u32>;

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The run exceeded its cycle budget — a livelock or a budget set too
    /// low.
    Timeout {
        /// Cycle at which the simulation gave up.
        at_cycle: u64,
    },
    /// The event queue drained while threads were still running: a lost
    /// wakeup in the protocol (a simulator bug, never a workload issue).
    Deadlock {
        /// Cycle at which events ran out.
        at_cycle: u64,
        /// Diagnostic dump of core states.
        detail: String,
    },
    /// The progress watchdog fired: some core made no progress (commit,
    /// fallback completion or halt) for a full horizon, or the event queue
    /// drained with live threads while the watchdog was armed. Unlike
    /// [`SimError::Timeout`], this carries a structured diagnosis of what
    /// starved and why. Only possible after [`Machine::set_watchdog`] /
    /// [`Machine::set_fault_plan`].
    WatchdogStall {
        /// The structured diagnosis (boxed: it carries per-core snapshots
        /// and recent trace events).
        report: Box<crate::faults::FailureReport>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Timeout { at_cycle } => {
                write!(
                    f,
                    "simulation exceeded its cycle budget at cycle {at_cycle}"
                )
            }
            SimError::Deadlock { at_cycle, detail } => {
                write!(
                    f,
                    "event queue drained with live threads at cycle {at_cycle}:\n{detail}"
                )
            }
            SimError::WatchdogStall { report } => {
                write!(f, "progress watchdog fired: {report}")
            }
        }
    }
}

impl Error for SimError {}

/// The whole simulated multicore.
///
/// See the [crate docs](crate) for an end-to-end example.
pub struct Machine {
    pub(crate) cfg: SystemConfig,
    pub(crate) policy: PolicyConfig,
    pub(crate) tuning: Tuning,
    pub(crate) clock: Cycle,
    pub(crate) events: EventQueue<Event>,
    pub(crate) xbar: Crossbar,
    pub(crate) dir: Directory,
    pub(crate) cores: Vec<CoreState>,
    pub(crate) lock: FallbackLock,
    pub(crate) token: PowerToken,
    pub(crate) ts_source: TimestampSource,
    pub(crate) rng: SimRng,
    pub(crate) stats: RunStats,
    pub(crate) halted: usize,
    pub(crate) trace: Trace,
    pub(crate) watch_log: Vec<String>,
    pub(crate) hook: Option<DecisionHook>,
    pub(crate) decision_log: Vec<DecisionRecord>,
    pub(crate) violations: Vec<Violation>,
    /// Construction seed, kept so [`Machine::set_fault_plan`] can seed the
    /// injector identically for identical `(seed, plan)` pairs.
    pub(crate) seed: u64,
    pub(crate) faults: Option<chats_faults::FaultState>,
    pub(crate) watchdog: Option<crate::faults::Watchdog>,
    /// Initial `CoreStep` events have been seeded (guards re-entry of the
    /// run loop after a pause or a checkpoint restore).
    pub(crate) started: bool,
    /// Epoch-commitment bookkeeping (disarmed by default).
    pub(crate) commit: crate::commit::CommitTracker,
}

/// Outcome of a bounded run segment ([`Machine::run_to`]).
#[derive(Debug)]
pub enum RunProgress {
    /// Every event before `at` was processed; the machine is paused at the
    /// cycle boundary and can be checkpointed or resumed with another
    /// [`Machine::run_to`] / [`Machine::run`] call.
    Paused {
        /// The pause boundary that was reached.
        at: u64,
    },
    /// The run completed (every thread halted); carries the final stats.
    Done(RunStats),
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("system", &self.policy.system)
            .field("cores", &self.cores.len())
            .field("clock", &self.clock)
            .finish()
    }
}

impl Machine {
    /// Builds a machine with `sys` hardware, `policy` HTM system and
    /// machine `tuning`, seeded with `seed`.
    pub fn new(sys: SystemConfig, policy: PolicyConfig, tuning: Tuning, seed: u64) -> Machine {
        let n = sys.core.cores;
        let power_threshold = if policy.system.uses_power_token() {
            Some(policy.power_threshold)
        } else {
            None
        };
        let cores = (0..n)
            .map(|_| {
                let mut c = CoreState::new(
                    sys.mem.l1_sets,
                    sys.mem.l1_ways,
                    policy.vsb_size,
                    policy.naive_counter_bits,
                    policy.retries,
                    power_threshold,
                );
                if tuning.check_atomicity || tuning.oracle_record {
                    c.oracle.enable();
                }
                c
            })
            .collect();
        Machine {
            cfg: sys,
            policy,
            tuning,
            clock: Cycle::ZERO,
            events: EventQueue::new(),
            xbar: Crossbar::new(sys.noc, n + 1),
            dir: Directory::new(),
            cores,
            lock: FallbackLock::new(),
            token: PowerToken::new(),
            ts_source: TimestampSource::new(),
            rng: SimRng::seed_from(seed),
            stats: RunStats::default(),
            halted: n,
            trace: Trace::default(),
            watch_log: Vec::new(),
            hook: None,
            decision_log: Vec::new(),
            violations: Vec::new(),
            seed,
            faults: None,
            watchdog: None,
            started: false,
            commit: crate::commit::CommitTracker::default(),
        }
    }

    /// Installs a schedule hook that resolves every decision point of the
    /// run (see [`DecisionHook`]). All decisions are recorded in
    /// [`Machine::decision_log`], so any run can be replayed by feeding the
    /// log back as a prefix. Call before [`Machine::run`].
    pub fn set_decision_hook(&mut self, hook: DecisionHook) {
        self.hook = Some(hook);
    }

    /// `true` while a schedule hook is installed (decision points active).
    #[must_use]
    pub(crate) fn hook_active(&self) -> bool {
        self.hook.is_some()
    }

    /// Resolves one decision point: asks the hook (when installed) and logs
    /// the outcome. Without a hook this is never called on hot paths — call
    /// sites guard with [`Machine::hook_active`] — but it degrades to
    /// choice 0 regardless.
    pub(crate) fn decide(&mut self, kind: DecisionKind, core: Option<usize>, choices: u32) -> u32 {
        debug_assert!(choices >= 2, "a decision needs at least two choices");
        let chosen = match self.hook.as_mut() {
            None => 0,
            Some(h) => {
                let dp = DecisionPoint {
                    index: self.decision_log.len() as u64,
                    kind,
                    core,
                };
                h(&dp, choices).min(choices - 1)
            }
        };
        if self.hook.is_some() {
            self.decision_log.push(DecisionRecord {
                kind,
                choices,
                chosen,
            });
        }
        chosen
    }

    /// Every decision made during the run, in stream order (empty unless a
    /// hook was installed).
    #[must_use]
    pub fn decision_log(&self) -> &[DecisionRecord] {
        &self.decision_log
    }

    /// Violations recorded by the oracle ([`Tuning::oracle_record`]).
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Installs a thread on `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range or already loaded.
    pub fn load_thread(&mut self, core: usize, vm: Vm) {
        let c = &mut self.cores[core];
        assert!(c.vm.is_none(), "core {core} already has a thread");
        c.vm = Some(vm);
        c.halted = false;
        self.halted -= 1;
    }

    /// Writes an initial value into simulated memory before the run
    /// (building the workload's data structures).
    pub fn store_init(&mut self, addr: Addr, value: u64) {
        self.dir.store.write_word(addr, value);
    }

    /// Reads a word of memory as an outside observer would *after* the run:
    /// a `Modified` (non-speculative) copy in some L1 wins over the backing
    /// store.
    #[must_use]
    pub fn inspect_word(&self, addr: Addr) -> u64 {
        let line = addr.line();
        for c in &self.cores {
            if let Some(e) = c.l1.lookup(line) {
                if e.state == CoherenceState::Modified && !e.sm && !e.spec_received {
                    return e.data.read(addr);
                }
            }
        }
        self.dir.store.read_word(addr)
    }

    /// The committed memory image after a run, as `word address -> value`
    /// for every nonzero word of every line the run touched, under the
    /// [`Machine::inspect_word`] visibility rule (a `Modified`
    /// non-speculative L1 copy wins over the backing store). Keys are
    /// sorted, so equal images compare and hash identically — the
    /// cross-policy differential tests depend on that.
    #[must_use]
    pub fn memory_image(&self) -> BTreeMap<u64, u64> {
        let mut lines: BTreeSet<chats_mem::LineAddr> =
            self.dir.store.lines().map(|(l, _)| l).collect();
        for c in &self.cores {
            for e in c.l1.iter() {
                if e.state == CoherenceState::Modified && !e.sm && !e.spec_received {
                    lines.insert(e.addr);
                }
            }
        }
        let mut image = BTreeMap::new();
        for l in lines {
            for off in 0..WORDS_PER_LINE {
                let a = l.base_word().offset(off);
                let v = self.inspect_word(a);
                if v != 0 {
                    image.insert(a.0, v);
                }
            }
        }
        image
    }

    /// Oracle entry point for every transactional load: records the
    /// observation and, in record mode, cross-checks reads of
    /// *non-speculative lineage* (no forwarding anywhere between the
    /// committed value and this observation) against the committed value at
    /// the read instant. A mismatch means the transaction is executing on
    /// an inconsistent snapshot — an opacity violation even if it later
    /// aborts. Speculative-lineage reads (`spec_lineage`, or a line still
    /// marked `spec_received`) are legitimately unvalidated and are checked
    /// at commit instead.
    pub(crate) fn oracle_read(&mut self, core: usize, addr: Addr, value: u64, spec_lineage: bool) {
        if !self.cores[core].oracle.is_enabled() {
            return;
        }
        self.cores[core].oracle.note_read(addr, value);
        if !self.tuning.oracle_record || spec_lineage || self.cores[core].oracle.wrote(addr.0) {
            return;
        }
        if self.cores[core]
            .l1
            .lookup(addr.line())
            .is_some_and(|e| e.spec_received)
        {
            return;
        }
        let committed = self.inspect_word(addr);
        if committed != value {
            self.violations.push(Violation::InconsistentRead {
                core,
                addr: addr.0,
                observed: value,
                committed,
                at: self.clock.0,
            });
        }
    }

    /// The active policy configuration.
    #[must_use]
    pub fn policy(&self) -> &PolicyConfig {
        &self.policy
    }

    /// The hardware configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The statistics gathered so far (complete after [`Machine::run`]).
    #[must_use]
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Enables protocol tracing into the built-in bounded ring: the
    /// **latest** `limit` events are kept and older ones are counted by
    /// [`Machine::dropped_events`]. Call before [`Machine::run`]. For
    /// unbounded capture, install a streaming sink with
    /// [`Machine::set_trace_sink`] instead. See [`TraceEvent`].
    pub fn enable_trace(&mut self, limit: usize) {
        self.trace = Trace::Ring(RingSink::new(limit));
    }

    /// Routes all trace events into `sink` (replacing any previous sink).
    /// Call before [`Machine::run`]; retrieve the sink afterwards with
    /// [`Machine::take_trace_sink`]. A boxed [`RingSink`] is folded into
    /// the built-in ring, so [`Machine::trace_events`] and
    /// [`Machine::dropped_events`] read it directly.
    pub fn set_trace_sink(&mut self, mut sink: Box<dyn TraceSink>) {
        if let Some(ring) = sink.as_any_mut().and_then(|a| a.downcast_mut::<RingSink>()) {
            self.trace = Trace::Ring(std::mem::replace(ring, RingSink::new(1)));
            return;
        }
        self.trace = Trace::Custom(sink);
    }

    /// Detaches and returns the sink installed by
    /// [`Machine::set_trace_sink`], flushing it first. Returns `None` when
    /// tracing is off or using the built-in ring.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        match std::mem::take(&mut self.trace) {
            Trace::Custom(mut s) => {
                s.flush();
                Some(s)
            }
            other => {
                self.trace = other;
                None
            }
        }
    }

    /// The recorded protocol trace, oldest first (empty unless
    /// [`Machine::enable_trace`] was used; custom sinks own their events).
    #[must_use]
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.trace.events()
    }

    /// Events the active sink had to discard (ring overflow, sink
    /// back-pressure). Nonzero means [`Machine::trace_events`] is a
    /// truncated view.
    #[must_use]
    pub fn dropped_events(&self) -> u64 {
        self.trace.dropped()
    }

    /// `true` when `line` is under watch (guard before formatting).
    pub(crate) fn watching(&self, line: chats_mem::LineAddr) -> bool {
        self.tuning.watch_line == Some(line) && self.watch_log.len() < 10_000
    }

    /// Appends a pre-formatted watch-log entry.
    pub(crate) fn watch_push(&mut self, msg: String) {
        let at = self.clock;
        self.watch_log.push(format!("[{at}] {msg}"));
    }

    /// The watch log accumulated for `Tuning::watch_line`.
    #[doc(hidden)]
    #[must_use]
    pub fn watch_log(&self) -> &[String] {
        &self.watch_log
    }

    /// Diagnostic description of one line's global state (directory view
    /// plus every cached copy), for protocol debugging.
    #[doc(hidden)]
    #[must_use]
    pub fn describe_line(&self, line: chats_mem::LineAddr) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "dir[{line}] = {:?}", self.dir.state_of(line));
        let _ = writeln!(s, "store[{line}] = {:?}", self.dir.store.read_line(line));
        for (i, c) in self.cores.iter().enumerate() {
            if let Some(e) = c.l1.lookup(line) {
                let _ = writeln!(
                    s,
                    "core{i}: {:?} sm={} spec={} data={:?} in_sig={} vsb={} mode={:?}",
                    e.state,
                    e.sm,
                    e.spec_received,
                    e.data,
                    c.read_sig.contains(line),
                    c.vsb.contains(line),
                    c.mode,
                );
            } else if c.read_sig.contains(line) {
                let _ = writeln!(s, "core{i}: no copy, in read signature, mode={:?}", c.mode);
            }
        }
        s
    }

    /// One-line status per core plus directory summary, for diagnosing
    /// stuck simulations.
    #[doc(hidden)]
    #[must_use]
    pub fn debug_dump(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "clock={} events={} halted={}",
            self.clock,
            self.events.len(),
            self.halted
        );
        for (i, c) in self.cores.iter().enumerate() {
            let _ = writeln!(
                s,
                "core{i}: halted={} mode={:?} wait={:?} pend={:?} val={:?} vsb={} epoch={} cp={}",
                c.halted,
                c.mode,
                c.waiting,
                c.pending_mem.map(|p| (p.line, p.getx)),
                c.val_req,
                c.vsb.len(),
                c.epoch,
                c.commit_pending,
            );
        }
        s
    }

    /// Runs to completion (every thread halted) or to `max_cycles`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Timeout`] if any thread is still running at
    /// `max_cycles`.
    pub fn run(&mut self, max_cycles: u64) -> Result<RunStats, SimError> {
        self.advance(None, max_cycles)?;
        self.finish_run()?;
        // Return the stats by move; `self.stats` is left defaulted. Callers
        // that want post-run access keep the returned value (the error
        // paths above never take this branch, so `Machine::stats` still
        // reflects the failed run for diagnostics).
        Ok(std::mem::take(&mut self.stats))
    }

    /// Runs until every event before the `pause_at` cycle boundary has
    /// been processed (or the run completes first). At a pause the machine
    /// sits exactly at the boundary — [`Machine::checkpoint`] there and a
    /// later restore resumes the run with byte-identical behaviour. The
    /// pause boundary follows the same semantics as an epoch boundary:
    /// when `pause_at` is a multiple of the armed commit interval, that
    /// boundary's commitment is already on the chain when this returns.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Machine::run`].
    pub fn run_to(&mut self, pause_at: u64, max_cycles: u64) -> Result<RunProgress, SimError> {
        if self.advance(Some(pause_at), max_cycles)? {
            self.finish_run()?;
            return Ok(RunProgress::Done(std::mem::take(&mut self.stats)));
        }
        Ok(RunProgress::Paused { at: pause_at })
    }

    /// Dispatches exactly one event: the dissection primitive. Seeds the
    /// initial events on the first call (like [`Machine::run`]), then pops
    /// and dispatches the next event, returning its time and a rendered
    /// description. Returns `Ok(None)` once the queue is empty. Commit
    /// boundaries are *not* recorded — single-stepping callers hash the
    /// state themselves via [`Machine::state_commitment`].
    ///
    /// # Errors
    ///
    /// Propagates a watchdog stall, exactly as the run loop would.
    pub fn step_one(&mut self) -> Result<Option<(u64, String)>, SimError> {
        self.seed_initial_steps();
        let Some((t, ev)) = self.next_event() else {
            return Ok(None);
        };
        let desc = format!("{ev:?}");
        self.clock = t;
        self.stats.events += 1;
        if self.watchdog.is_some() {
            if let Some(err) = self.watchdog_check() {
                return Err(err);
            }
        }
        self.dispatch(ev);
        Ok(Some((t.0, desc)))
    }

    /// Pushes the initial `CoreStep` events, once per machine lifetime.
    fn seed_initial_steps(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for core in 0..self.cores.len() {
            if self.cores[core].vm.is_some() && !self.cores[core].halted {
                let epoch = self.cores[core].epoch;
                // Slight stagger breaks artificial lockstep between threads.
                self.events
                    .push(Cycle(core as u64), Event::CoreStep { core, epoch });
            }
        }
    }

    /// The run loop: processes events until the queue drains, every thread
    /// halts (→ `Ok(true)`), or every event before `pause_at` is done
    /// (→ `Ok(false)`). Epoch-commitment boundaries are recorded before
    /// the pause check, so a pause on a boundary has its commitment on the
    /// chain already.
    fn advance(&mut self, pause_at: Option<u64>, max_cycles: u64) -> Result<bool, SimError> {
        self.seed_initial_steps();
        loop {
            let Some(t) = self.events.peek_time() else {
                return Ok(true);
            };
            if t.0 > max_cycles {
                return Err(SimError::Timeout { at_cycle: t.0 });
            }
            if self.commit.interval.is_some() {
                self.note_commit_boundaries(t.0);
            }
            if pause_at.is_some_and(|p| t.0 >= p) {
                return Ok(false);
            }
            let (t, ev) = self.next_event().expect("peeked event vanished");
            self.clock = t;
            self.stats.events += 1;
            if self.watchdog.is_some() {
                if let Some(err) = self.watchdog_check() {
                    return Err(err);
                }
            }
            self.dispatch(ev);
            if self.halted == self.cores.len() {
                return Ok(true);
            }
        }
    }

    /// Post-loop epilogue: deadlock diagnosis and final stat folding.
    fn finish_run(&mut self) -> Result<(), SimError> {
        if self.halted != self.cores.len() {
            if let Some(err) = self.watchdog_drain_report() {
                return Err(err);
            }
            return Err(SimError::Deadlock {
                at_cycle: self.clock.0,
                detail: self.debug_dump(),
            });
        }
        self.finish_stats();
        Ok(())
    }

    /// Pops the next event. With a schedule hook installed, same-cycle ties
    /// become a [`DecisionKind::TieBreak`] point; without one this is a
    /// plain FIFO pop.
    fn next_event(&mut self) -> Option<(Cycle, Event)> {
        if self.hook.is_none() {
            return self.events.pop();
        }
        let width = self.events.tie_width();
        let k = if width > 1 {
            self.decide(DecisionKind::TieBreak, None, width as u32) as usize
        } else {
            0
        };
        self.events.pop_tied(k)
    }

    fn finish_stats(&mut self) {
        self.stats.cycles = self.clock.0;
        self.stats.flits = self.xbar.flits_sent();
        self.stats.control_messages = self.xbar.control_messages();
        self.stats.data_messages = self.xbar.data_messages();
        self.stats.instructions = self
            .cores
            .iter()
            .filter_map(|c| c.vm.as_ref())
            .map(|v| v.retired())
            .sum();
    }

    fn dispatch(&mut self, ev: Event) {
        match ev {
            Event::CoreStep { core, epoch } => {
                if self.cores[core].epoch == epoch && !self.cores[core].halted {
                    // An armed fault plan may consume the step (freeze,
                    // spurious abort, forced VSB eviction).
                    if self.faults.is_none() || !self.core_fault_step(core) {
                        self.core_step(core);
                    }
                }
            }
            Event::RetryTx { core, epoch } => {
                if self.cores[core].epoch == epoch && !self.cores[core].halted {
                    self.retry_tx(core);
                }
            }
            Event::MemRetry { core, epoch } => {
                if self.cores[core].epoch == epoch {
                    self.mem_retry(core);
                }
            }
            Event::ValidationTick { core, epoch } => {
                if self.cores[core].epoch == epoch {
                    self.validation_tick(core);
                }
            }
            Event::CommitRelease { core, epoch } => {
                if self.cores[core].epoch == epoch
                    && self.cores[core].in_tx()
                    && self.cores[core].commit_pending
                    && self.cores[core].vsb.is_empty()
                    && self.try_commit(core)
                {
                    let ep = self.cores[core].epoch;
                    self.events
                        .push(self.clock + 1, Event::CoreStep { core, epoch: ep });
                }
            }
            Event::DirRecv(msg) => self.dir_recv(msg),
            Event::CoreRecv { core, msg } => self.core_recv(core, msg),
        }
    }

    // ---- messaging fabric ---------------------------------------------

    pub(crate) fn dir_node(&self) -> NodeId {
        NodeId(self.cores.len())
    }

    /// Sends a message from a core to the directory, injecting at
    /// `clock + delay`.
    pub(crate) fn send_to_dir(
        &mut self,
        from_core: usize,
        class: MsgClass,
        msg: DirMsg,
        delay: u64,
    ) {
        let at = self.clock + delay;
        let arrive = self
            .xbar
            .send(at, NodeId(from_core), self.dir_node(), class);
        let arrive = if self.faults.is_some() {
            match self.fault_adjust_dir_send(from_core, arrive, &msg) {
                Some(a) => a,
                None => return, // dropped; a MemRetry is scheduled instead
            }
        } else {
            arrive
        };
        if self.trace.enabled() {
            self.trace.record(TraceEvent::NocSend {
                at,
                src: from_core,
                dst: self.dir_node().0,
                flits: self.xbar.flits_of(class),
                arrive,
            });
        }
        self.events.push(arrive, Event::DirRecv(msg));
    }

    /// Sends a message from the directory to a core, injecting at
    /// `clock + delay`.
    pub(crate) fn dir_send_to_core(
        &mut self,
        core: usize,
        class: MsgClass,
        msg: CoreMsg,
        delay: u64,
    ) {
        let at = self.clock + delay;
        let arrive = self.xbar.send(at, self.dir_node(), NodeId(core), class);
        let (arrive, dup) = if self.faults.is_some() {
            match self.fault_adjust_core_send(core, arrive, &msg) {
                Some(adjusted) => adjusted,
                None => return, // dropped validation response
            }
        } else {
            (arrive, None)
        };
        if self.trace.enabled() {
            self.trace.record(TraceEvent::NocSend {
                at,
                src: self.dir_node().0,
                dst: core,
                flits: self.xbar.flits_of(class),
                arrive,
            });
        }
        if let Some(d) = dup {
            let dup_msg = msg.clone();
            self.events.push(d, Event::CoreRecv { core, msg: dup_msg });
        }
        self.events.push(arrive, Event::CoreRecv { core, msg });
    }

    /// Sends a message from one core's cache to another core (3-hop data
    /// responses, SpecResps, nacks).
    pub(crate) fn core_send_to_core(
        &mut self,
        from: usize,
        to: usize,
        class: MsgClass,
        msg: CoreMsg,
        delay: u64,
    ) {
        let at = self.clock + delay;
        let arrive = self.xbar.send(at, NodeId(from), NodeId(to), class);
        let (arrive, dup) = if self.faults.is_some() {
            match self.fault_adjust_core_send(to, arrive, &msg) {
                Some(adjusted) => adjusted,
                None => return, // dropped validation response
            }
        } else {
            (arrive, None)
        };
        if self.trace.enabled() {
            self.trace.record(TraceEvent::NocSend {
                at,
                src: from,
                dst: to,
                flits: self.xbar.flits_of(class),
                arrive,
            });
        }
        if let Some(d) = dup {
            let dup_msg = msg.clone();
            self.events.push(
                d,
                Event::CoreRecv {
                    core: to,
                    msg: dup_msg,
                },
            );
        }
        self.events.push(arrive, Event::CoreRecv { core: to, msg });
    }

    /// Issues the demand request described by the core's `pending_mem`.
    pub(crate) fn issue_pending_request(&mut self, core: usize, delay: u64) {
        let c = &self.cores[core];
        let pm = c.pending_mem.expect("no pending memory op to issue");
        let req = Request {
            core,
            line: pm.line,
            getx: pm.getx,
            pic: c.pic.pic,
            power: c.is_power,
            non_tx: !c.in_tx(),
            levc_ts: c.levc_ts,
            levc_consumed: c.levc.has_consumed,
            epoch: c.epoch,
        };
        self.send_to_dir(core, MsgClass::Control, DirMsg::Request(req), delay);
    }
}
