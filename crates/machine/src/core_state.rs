//! Per-core simulation state: L1, HTM engine registers, VM bookkeeping.

use chats_core::{
    LevcArbiter, NaiveValidationCounter, PicContext, RetryManager, Timestamp, ValidationStateBuffer,
};
use chats_mem::{Addr, Cache, LineAddr, ReadSignature};
use chats_tvm::{Vm, VmSnapshot};

use crate::oracle::Oracle;
use chats_core::fasthash::{FastHashMap, FastHashSet};
use chats_snap::{Snap, SnapError, SnapReader, SnapWriter};

/// Execution mode of a core's current thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Outside any transaction.
    Plain,
    /// Inside a speculative (HTM) transaction attempt.
    Tx,
    /// Executing the transaction body non-speculatively while holding the
    /// global fallback lock.
    Fallback,
}

/// Why a core is parked, if it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitReason {
    /// Not waiting.
    None,
    /// Waiting for the fallback lock to be released so a speculative
    /// attempt can start (eager subscription).
    LockToStart,
    /// Waiting to *acquire* the fallback lock (fallback verdict).
    LockToAcquire,
    /// Waiting for the power token (power-system fallback path).
    PowerToken,
}

/// An outstanding demand memory operation.
#[derive(Debug, Clone, Copy)]
pub struct PendingMem {
    /// Full word address.
    pub addr: Addr,
    /// Containing line.
    pub line: LineAddr,
    /// Exclusive request.
    pub getx: bool,
    /// The paused VM instruction is a store.
    pub is_store: bool,
    /// Value to store once permissions (or a speculative copy) arrive.
    pub store_value: u64,
}

/// All state of one simulated core.
#[derive(Debug)]
pub struct CoreState {
    /// The thread's interpreter (absent on unloaded cores).
    pub vm: Option<Vm>,
    /// The thread reached `Halt`.
    pub halted: bool,
    /// Monotonic attempt counter; events and responses carry it, so
    /// anything issued before an abort is ignored afterwards.
    pub epoch: u64,
    /// Current execution mode.
    pub mode: ExecMode,
    /// Rollback point captured at `TxBegin`.
    pub snapshot: Option<VmSnapshot>,
    /// Static id of the transaction being executed (the `TxBegin` pc),
    /// used by the Rrestrict/W write predictor.
    pub tx_site: usize,
    /// CHATS chaining context (PiC + Cons).
    pub pic: PicContext,
    /// Validation State Buffer.
    pub vsb: ValidationStateBuffer,
    /// Naive R-S misvalidation counter.
    pub naive: NaiveValidationCounter,
    /// LEVC timestamps / chain flags.
    pub levc: LevcArbiter,
    /// LEVC timestamp for the current transaction (kept across retries).
    pub levc_ts: Option<Timestamp>,
    /// Retry/fallback bookkeeping.
    pub retry: RetryManager,
    /// Private L1 data cache.
    pub l1: Cache,
    /// Perfect read signature.
    pub read_sig: ReadSignature,
    /// Outstanding demand miss.
    pub pending_mem: Option<PendingMem>,
    /// Outstanding validation request (line being validated).
    pub val_req: Option<LineAddr>,
    /// A validation timer event is scheduled.
    pub val_timer_armed: bool,
    /// `TxEnd` reached but the VSB is not yet empty.
    pub commit_pending: bool,
    /// Times the current commit has been deferred by a schedule hook's
    /// `CommitRelease` decision (bounded, so exploration cannot livelock a
    /// commit-ready transaction).
    pub commit_defers: u8,
    /// Park reason.
    pub waiting: WaitReason,
    /// The core is parked between attempts and a `RetryTx` is expected;
    /// duplicate wakeups are ignored unless this is set.
    pub awaiting_retry: bool,
    /// This attempt sent at least one `SpecResp` (Fig. 6).
    pub attempt_forwarded: bool,
    /// This attempt was involved in at least one conflict (Fig. 6).
    pub attempt_conflicted: bool,
    /// Holding the power token.
    pub is_power: bool,
    /// Rrestrict/W heuristic: per static transaction, lines written by
    /// earlier attempts (predicted "in-flight writes").
    pub write_predictor: FastHashMap<usize, FastHashSet<LineAddr>>,
    /// Atomicity oracle (enabled via `Tuning::check_atomicity`).
    pub(crate) oracle: Oracle,
}

impl CoreState {
    /// Fresh core state with the given cache geometry and policy knobs.
    pub fn new(
        l1_sets: usize,
        l1_ways: usize,
        vsb_size: usize,
        naive_bits: u32,
        max_retries: u32,
        power_threshold: Option<u32>,
    ) -> CoreState {
        CoreState {
            vm: None,
            halted: true, // unloaded cores count as done
            epoch: 0,
            mode: ExecMode::Plain,
            snapshot: None,
            tx_site: 0,
            pic: PicContext::new(),
            vsb: ValidationStateBuffer::new(vsb_size),
            naive: NaiveValidationCounter::new(naive_bits),
            levc: LevcArbiter::default(),
            levc_ts: None,
            retry: RetryManager::new(max_retries, power_threshold),
            l1: Cache::new(l1_sets, l1_ways),
            read_sig: ReadSignature::new(),
            pending_mem: None,
            val_req: None,
            val_timer_armed: false,
            commit_pending: false,
            commit_defers: 0,
            waiting: WaitReason::None,
            awaiting_retry: false,
            attempt_forwarded: false,
            attempt_conflicted: false,
            is_power: false,
            write_predictor: FastHashMap::default(),
            oracle: Oracle::default(),
        }
    }

    /// `true` while a speculative transaction attempt is active.
    pub fn in_tx(&self) -> bool {
        self.mode == ExecMode::Tx
    }

    /// Lines predicted to be written soon by the current static
    /// transaction (Rrestrict/W heuristic).
    pub fn predicted_writes(&self) -> Option<&FastHashSet<LineAddr>> {
        self.write_predictor.get(&self.tx_site)
    }

    /// Serializes the complete core state. The VM is written as presence +
    /// dynamic registers only ([`Vm::save_state`]): the immutable program
    /// is rebuilt by the workload-construction path before restoring.
    pub fn save_state(&self, w: &mut SnapWriter) {
        match &self.vm {
            None => w.u8(0),
            Some(vm) => {
                w.u8(1);
                vm.save_state(w);
            }
        }
        self.halted.save(w);
        self.epoch.save(w);
        self.mode.save(w);
        self.snapshot.save(w);
        self.tx_site.save(w);
        self.pic.save(w);
        self.vsb.save(w);
        self.naive.save(w);
        self.levc.save(w);
        self.levc_ts.save(w);
        self.retry.save(w);
        self.l1.save(w);
        self.read_sig.save(w);
        self.pending_mem.save(w);
        self.val_req.save(w);
        self.val_timer_armed.save(w);
        self.commit_pending.save(w);
        self.commit_defers.save(w);
        self.waiting.save(w);
        self.awaiting_retry.save(w);
        self.attempt_forwarded.save(w);
        self.attempt_conflicted.save(w);
        self.is_power.save(w);
        self.write_predictor.save(w);
        self.oracle.save_state(w);
    }

    /// Restores state captured by [`CoreState::save_state`] over this core.
    ///
    /// # Errors
    ///
    /// Fails on a malformed stream, or when VM presence disagrees with the
    /// snapshot (the restored machine must have the same threads loaded).
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        match (r.u8()?, self.vm.as_mut()) {
            (0, None) => {}
            (1, Some(vm)) => vm.restore_state(r)?,
            (0, Some(_)) => {
                return Err(r.err("snapshot has no thread on a core that has one loaded"));
            }
            (1, None) => {
                return Err(r.err("snapshot has a thread on a core with none loaded"));
            }
            (t, _) => return Err(r.err(format!("vm presence byte must be 0 or 1, got {t}"))),
        }
        self.halted = Snap::load(r)?;
        self.epoch = Snap::load(r)?;
        self.mode = Snap::load(r)?;
        self.snapshot = Snap::load(r)?;
        self.tx_site = Snap::load(r)?;
        self.pic = Snap::load(r)?;
        self.vsb = Snap::load(r)?;
        self.naive = Snap::load(r)?;
        self.levc = Snap::load(r)?;
        self.levc_ts = Snap::load(r)?;
        self.retry = Snap::load(r)?;
        self.l1 = Snap::load(r)?;
        self.read_sig = Snap::load(r)?;
        self.pending_mem = Snap::load(r)?;
        self.val_req = Snap::load(r)?;
        self.val_timer_armed = Snap::load(r)?;
        self.commit_pending = Snap::load(r)?;
        self.commit_defers = Snap::load(r)?;
        self.waiting = Snap::load(r)?;
        self.awaiting_retry = Snap::load(r)?;
        self.attempt_forwarded = Snap::load(r)?;
        self.attempt_conflicted = Snap::load(r)?;
        self.is_power = Snap::load(r)?;
        self.write_predictor = Snap::load(r)?;
        self.oracle.restore_state(r)?;
        Ok(())
    }
}

impl Snap for ExecMode {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(match self {
            ExecMode::Plain => 0,
            ExecMode::Tx => 1,
            ExecMode::Fallback => 2,
        });
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => ExecMode::Plain,
            1 => ExecMode::Tx,
            2 => ExecMode::Fallback,
            t => return Err(r.err(format!("ExecMode tag must be 0..=2, got {t}"))),
        })
    }
}

impl Snap for WaitReason {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(match self {
            WaitReason::None => 0,
            WaitReason::LockToStart => 1,
            WaitReason::LockToAcquire => 2,
            WaitReason::PowerToken => 3,
        });
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => WaitReason::None,
            1 => WaitReason::LockToStart,
            2 => WaitReason::LockToAcquire,
            3 => WaitReason::PowerToken,
            t => return Err(r.err(format!("WaitReason tag must be 0..=3, got {t}"))),
        })
    }
}

impl Snap for PendingMem {
    fn save(&self, w: &mut SnapWriter) {
        self.addr.save(w);
        self.line.save(w);
        self.getx.save(w);
        self.is_store.save(w);
        self.store_value.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(PendingMem {
            addr: Snap::load(r)?,
            line: Snap::load(r)?,
            getx: Snap::load(r)?,
            is_store: Snap::load(r)?,
            store_value: Snap::load(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> CoreState {
        CoreState::new(8, 2, 4, 4, 6, None)
    }

    #[test]
    fn fresh_core_is_idle() {
        let c = core();
        assert!(c.halted);
        assert!(!c.in_tx());
        assert_eq!(c.waiting, WaitReason::None);
        assert!(c.vsb.is_empty());
    }

    #[test]
    fn predictor_is_per_site() {
        let mut c = core();
        c.write_predictor.entry(10).or_default().insert(LineAddr(5));
        c.tx_site = 10;
        assert!(c.predicted_writes().unwrap().contains(&LineAddr(5)));
        c.tx_site = 20;
        assert!(c.predicted_writes().is_none());
    }
}
