//! The blocking full-map MESI directory.
//!
//! One request is in flight per line at a time; requests arriving for a
//! busy line queue and are replayed when the line unblocks. This avoids
//! transient protocol states while preserving the conflict and forwarding
//! behaviour CHATS depends on (see DESIGN.md §6, decision 4).

use crate::msg::Request;
use chats_mem::{BackingStore, Line, LineAddr};
use std::collections::{HashMap, HashSet, VecDeque};

/// Stable directory state of one line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirState {
    /// No private copies.
    Uncached,
    /// Read-only copies at the listed cores.
    Shared(Vec<usize>),
    /// Exclusively owned (E or M) by one core.
    Owned(usize),
}

/// Per-line directory bookkeeping.
#[derive(Debug)]
pub struct DirLine {
    /// Coherence state.
    pub state: DirState,
    /// A request is being serviced for this line.
    pub busy: bool,
    /// Requests waiting for the line to unblock.
    pub queue: VecDeque<Request>,
    /// Invalidation acks still expected for the in-flight request.
    pub pending_invs: usize,
    /// Some sharer refused to invalidate (power transaction): nack the
    /// requester when the remaining acks arrive.
    pub inv_refused: bool,
    /// Sharers that acknowledged the in-flight invalidation round.
    pub invalidated: Vec<usize>,
}

impl DirLine {
    fn new() -> DirLine {
        DirLine {
            state: DirState::Uncached,
            busy: false,
            queue: VecDeque::new(),
            pending_invs: 0,
            inv_refused: false,
            invalidated: Vec::new(),
        }
    }
}

/// The directory plus the inclusive backing store behind it.
#[derive(Debug)]
pub struct Directory {
    lines: HashMap<LineAddr, DirLine>,
    /// Committed value of every line (the folded L2/L3/DRAM level).
    pub store: BackingStore,
    /// Lines that have been accessed before (LLC-warm); cold lines pay the
    /// memory latency.
    warm: HashSet<LineAddr>,
}

impl Directory {
    /// An empty directory over zeroed memory.
    pub fn new() -> Directory {
        Directory {
            lines: HashMap::new(),
            store: BackingStore::new(),
            warm: HashSet::new(),
        }
    }

    /// Mutable per-line entry, created on demand.
    pub fn line_mut(&mut self, addr: LineAddr) -> &mut DirLine {
        self.lines.entry(addr).or_insert_with(DirLine::new)
    }

    /// Immutable per-line state (Uncached if never touched).
    pub fn state_of(&self, addr: LineAddr) -> DirState {
        self.lines
            .get(&addr)
            .map(|l| l.state.clone())
            .unwrap_or(DirState::Uncached)
    }

    /// Marks a line warm; returns `true` if it was cold (first touch ⇒
    /// memory latency applies).
    pub fn touch(&mut self, addr: LineAddr) -> bool {
        self.warm.insert(addr)
    }

    /// Committed data of a line.
    pub fn read(&self, addr: LineAddr) -> Line {
        self.store.read_line(addr)
    }
}

impl Default for Directory {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_lines_are_uncached() {
        let d = Directory::new();
        assert_eq!(d.state_of(LineAddr(9)), DirState::Uncached);
    }

    #[test]
    fn touch_reports_cold_once() {
        let mut d = Directory::new();
        assert!(d.touch(LineAddr(1)), "first touch is cold");
        assert!(!d.touch(LineAddr(1)), "second touch is warm");
    }

    #[test]
    fn line_mut_creates_and_persists() {
        let mut d = Directory::new();
        d.line_mut(LineAddr(2)).state = DirState::Owned(3);
        assert_eq!(d.state_of(LineAddr(2)), DirState::Owned(3));
    }
}
