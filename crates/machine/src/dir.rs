//! The blocking full-map MESI directory.
//!
//! One request is in flight per line at a time; requests arriving for a
//! busy line queue and are replayed when the line unblocks. This avoids
//! transient protocol states while preserving the conflict and forwarding
//! behaviour CHATS depends on (see DESIGN.md §6, decision 4).

use crate::msg::Request;
use chats_core::fasthash::{FastHashMap, FastHashSet};
use chats_mem::{BackingStore, Line, LineAddr};
use chats_snap::{Snap, SnapError, SnapReader, SnapWriter};
use std::collections::VecDeque;

/// Stable directory state of one line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirState {
    /// No private copies.
    Uncached,
    /// Read-only copies at the listed cores.
    Shared(Vec<usize>),
    /// Exclusively owned (E or M) by one core.
    Owned(usize),
}

/// Per-line directory bookkeeping.
#[derive(Debug)]
pub struct DirLine {
    /// Coherence state.
    pub state: DirState,
    /// A request is being serviced for this line.
    pub busy: bool,
    /// Requests waiting for the line to unblock.
    pub queue: VecDeque<Request>,
    /// Invalidation acks still expected for the in-flight request.
    pub pending_invs: usize,
    /// Some sharer refused to invalidate (power transaction): nack the
    /// requester when the remaining acks arrive.
    pub inv_refused: bool,
    /// Sharers that acknowledged the in-flight invalidation round.
    pub invalidated: Vec<usize>,
}

impl DirLine {
    fn new() -> DirLine {
        DirLine {
            state: DirState::Uncached,
            busy: false,
            queue: VecDeque::new(),
            pending_invs: 0,
            inv_refused: false,
            invalidated: Vec::new(),
        }
    }
}

/// Direct-mapped span of the per-line directory state. Every registry
/// workload's footprint fits here; a `DirLine` for a hotter-than-that
/// address space spills into the hash map.
const DENSE_DIR_LINES: usize = 1 << 15;

/// The directory plus the inclusive backing store behind it.
///
/// The per-line state for low line addresses lives in a direct-mapped
/// `Vec<DirLine>` grown on first touch: `line_mut` — executed once per
/// protocol message — is a bounds check and an index, no hashing. An
/// untouched dense slot holds `DirState::Uncached`, which is exactly what
/// the map-based lookup reported for an absent entry, so the two layouts
/// are observationally identical.
#[derive(Debug)]
pub struct Directory {
    /// Lines `0..DENSE_DIR_LINES`, grown lazily to the highest touched.
    dense: Vec<DirLine>,
    /// Lines at or above `DENSE_DIR_LINES`.
    spill: FastHashMap<LineAddr, DirLine>,
    /// Committed value of every line (the folded L2/L3/DRAM level).
    pub store: BackingStore,
    /// Warm bits for the dense span: one bit per line, set once the line
    /// has been accessed (LLC-warm); cold lines pay the memory latency.
    warm_bits: Vec<u64>,
    /// Warm lines at or above `DENSE_DIR_LINES`.
    warm_spill: FastHashSet<LineAddr>,
}

impl Directory {
    /// An empty directory over zeroed memory.
    pub fn new() -> Directory {
        Directory {
            dense: Vec::new(),
            spill: FastHashMap::default(),
            store: BackingStore::new(),
            warm_bits: Vec::new(),
            warm_spill: FastHashSet::default(),
        }
    }

    /// Mutable per-line entry, created on demand.
    #[inline]
    pub fn line_mut(&mut self, addr: LineAddr) -> &mut DirLine {
        let idx = addr.index();
        if (idx as usize) < DENSE_DIR_LINES {
            let idx = idx as usize;
            if idx >= self.dense.len() {
                self.dense.resize_with(idx + 1, DirLine::new);
            }
            &mut self.dense[idx]
        } else {
            self.spill.entry(addr).or_insert_with(DirLine::new)
        }
    }

    /// Immutable per-line state (Uncached if never touched).
    #[inline]
    pub fn state_of(&self, addr: LineAddr) -> DirState {
        let idx = addr.index();
        if (idx as usize) < DENSE_DIR_LINES {
            match self.dense.get(idx as usize) {
                Some(l) => l.state.clone(),
                None => DirState::Uncached,
            }
        } else {
            self.spill
                .get(&addr)
                .map(|l| l.state.clone())
                .unwrap_or(DirState::Uncached)
        }
    }

    /// Marks a line warm; returns `true` if it was cold (first touch ⇒
    /// memory latency applies).
    #[inline]
    pub fn touch(&mut self, addr: LineAddr) -> bool {
        let idx = addr.index();
        if (idx as usize) < DENSE_DIR_LINES {
            let (word, bit) = (idx as usize / 64, idx % 64);
            if word >= self.warm_bits.len() {
                self.warm_bits.resize(word + 1, 0);
            }
            let cold = self.warm_bits[word] & (1u64 << bit) == 0;
            self.warm_bits[word] |= 1u64 << bit;
            cold
        } else {
            self.warm_spill.insert(addr)
        }
    }

    /// Committed data of a line.
    pub fn read(&self, addr: LineAddr) -> Line {
        self.store.read_line(addr)
    }
}

impl Default for Directory {
    fn default() -> Self {
        Self::new()
    }
}

impl Snap for DirState {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            DirState::Uncached => w.u8(0),
            DirState::Shared(cores) => {
                w.u8(1);
                cores.save(w);
            }
            DirState::Owned(core) => {
                w.u8(2);
                core.save(w);
            }
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => DirState::Uncached,
            1 => DirState::Shared(Snap::load(r)?),
            2 => DirState::Owned(Snap::load(r)?),
            t => return Err(r.err(format!("DirState tag must be 0..=2, got {t}"))),
        })
    }
}

impl Snap for DirLine {
    fn save(&self, w: &mut SnapWriter) {
        self.state.save(w);
        self.busy.save(w);
        self.queue.save(w);
        self.pending_invs.save(w);
        self.inv_refused.save(w);
        self.invalidated.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(DirLine {
            state: Snap::load(r)?,
            busy: Snap::load(r)?,
            queue: Snap::load(r)?,
            pending_invs: Snap::load(r)?,
            inv_refused: Snap::load(r)?,
            invalidated: Snap::load(r)?,
        })
    }
}

impl Directory {
    /// Serializes the full directory: per-line state (dense span in index
    /// order, spill in sorted-key order), the backing store, and the warm
    /// bits. The dense span's grown length is part of the stream — restore
    /// reproduces the exact geometry, keeping subsequent snapshots of the
    /// restored machine byte-identical to the uninterrupted run's.
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.dense.save(w);
        self.spill.save(w);
        self.store.save(w);
        self.warm_bits.save(w);
        self.warm_spill.save(w);
    }

    /// Restores state captured by [`Directory::save_state`].
    ///
    /// # Errors
    ///
    /// Fails on a malformed stream or spill keys inside the dense span.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let dense: Vec<DirLine> = Snap::load(r)?;
        if dense.len() > DENSE_DIR_LINES {
            return Err(r.err(format!(
                "dense directory span {} exceeds the {DENSE_DIR_LINES}-line maximum",
                dense.len()
            )));
        }
        let spill: FastHashMap<LineAddr, DirLine> = Snap::load(r)?;
        if let Some(k) = spill
            .keys()
            .find(|a| (a.index() as usize) < DENSE_DIR_LINES)
        {
            return Err(r.err(format!(
                "spill directory line {k} belongs to the dense span"
            )));
        }
        let store: BackingStore = Snap::load(r)?;
        let warm_bits: Vec<u64> = Snap::load(r)?;
        let warm_spill: FastHashSet<LineAddr> = Snap::load(r)?;
        if let Some(k) = warm_spill
            .iter()
            .find(|a| (a.index() as usize) < DENSE_DIR_LINES)
        {
            return Err(r.err(format!("spill warm bit {k} belongs to the dense span")));
        }
        self.dense = dense;
        self.spill = spill;
        self.store = store;
        self.warm_bits = warm_bits;
        self.warm_spill = warm_spill;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_lines_are_uncached() {
        let d = Directory::new();
        assert_eq!(d.state_of(LineAddr(9)), DirState::Uncached);
        assert_eq!(
            d.state_of(LineAddr(DENSE_DIR_LINES as u64 + 9)),
            DirState::Uncached
        );
    }

    #[test]
    fn touch_reports_cold_once() {
        let mut d = Directory::new();
        assert!(d.touch(LineAddr(1)), "first touch is cold");
        assert!(!d.touch(LineAddr(1)), "second touch is warm");
        let far = LineAddr(u64::MAX - 3);
        assert!(d.touch(far), "first spill touch is cold");
        assert!(!d.touch(far), "second spill touch is warm");
    }

    #[test]
    fn line_mut_creates_and_persists() {
        let mut d = Directory::new();
        d.line_mut(LineAddr(2)).state = DirState::Owned(3);
        assert_eq!(d.state_of(LineAddr(2)), DirState::Owned(3));
    }

    #[test]
    fn dense_and_spill_lines_are_independent() {
        let mut d = Directory::new();
        let below = LineAddr(DENSE_DIR_LINES as u64 - 1);
        let above = LineAddr(DENSE_DIR_LINES as u64);
        d.line_mut(below).state = DirState::Owned(1);
        d.line_mut(above).state = DirState::Shared(vec![0, 2]);
        assert_eq!(d.state_of(below), DirState::Owned(1));
        assert_eq!(d.state_of(above), DirState::Shared(vec![0, 2]));
        // Growing the dense span did not invent state for neighbours.
        assert_eq!(d.state_of(LineAddr(5)), DirState::Uncached);
    }
}
