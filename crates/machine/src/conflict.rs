//! Producer-side conflict policy dispatch: given a conflicting request at
//! an owner, choose forward / abort / nack per the active HTM system.

use crate::machine::Machine;
use crate::msg::Request;
use chats_core::{chats_resolve_bounded, ConflictResolution, HtmSystem, LevcDecision, Pic};

/// What the owner does about a conflicting request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OwnerAction {
    /// Send a `SpecResp` carrying this PiC (`None` for systems or
    /// producers without one).
    Forward(Option<Pic>),
    /// Requester-wins: the owner transaction aborts.
    AbortSelf,
    /// Negative acknowledgement: the requester stalls and retries.
    Nack,
}

impl Machine {
    /// Resolves a conflict at `core` (the owner) for request `req`.
    ///
    /// `in_ws`: the conflicting line is in the owner's write set;
    /// `has_copy`: the owner still holds the line in L1 (forwarding needs
    /// the data).
    pub(crate) fn decide_conflict(
        &mut self,
        core: usize,
        req: &Request,
        in_ws: bool,
        has_copy: bool,
    ) -> OwnerAction {
        // Conflicting non-transactional requests always win (§IV-A).
        if req.non_tx {
            return OwnerAction::AbortSelf;
        }
        match self.policy.system {
            HtmSystem::Baseline => OwnerAction::AbortSelf,
            HtmSystem::Power => {
                if req.power {
                    OwnerAction::AbortSelf
                } else if self.cores[core].is_power {
                    OwnerAction::Nack
                } else {
                    OwnerAction::AbortSelf
                }
            }
            HtmSystem::NaiveRs => {
                if self.forwarding_allowed(core, req, in_ws, has_copy) {
                    OwnerAction::Forward(None)
                } else {
                    OwnerAction::AbortSelf
                }
            }
            HtmSystem::Chats => self.decide_chats(core, req, in_ws, has_copy),
            HtmSystem::Pchats => {
                if req.power {
                    // Power transactions never consume: they win outright.
                    OwnerAction::AbortSelf
                } else if self.cores[core].is_power {
                    // Power transactions are pure producers at the top of
                    // every chain; consumers keep their PiC (§VI-B).
                    if self.forwarding_allowed(core, req, in_ws, has_copy) {
                        OwnerAction::Forward(None)
                    } else {
                        OwnerAction::Nack
                    }
                } else {
                    self.decide_chats(core, req, in_ws, has_copy)
                }
            }
            HtmSystem::LevcBeIdealized => {
                let ts = req.levc_ts.expect("LEVC request without timestamp");
                match self.cores[core].levc.resolve(ts, req.levc_consumed) {
                    LevcDecision::Forward => {
                        if self.forwarding_allowed(core, req, in_ws, has_copy) {
                            self.cores[core].levc.note_forwarded();
                            OwnerAction::Forward(None)
                        } else {
                            OwnerAction::Nack // fall back to requester-stall
                        }
                    }
                    LevcDecision::Stall => OwnerAction::Nack,
                    LevcDecision::AbortLocal => OwnerAction::AbortSelf,
                }
            }
        }
    }

    fn decide_chats(
        &mut self,
        core: usize,
        req: &Request,
        in_ws: bool,
        has_copy: bool,
    ) -> OwnerAction {
        // Graceful degradation (middle rung): a transaction repeatedly shot
        // down by injected faults stops extending chains and resolves
        // requester-wins until it commits or falls back. Never taken
        // without fault injection (`demoted` is fed only by `note_fault`).
        if self.cores[core].retry.demoted() {
            return OwnerAction::AbortSelf;
        }
        if !self.forwarding_allowed(core, req, in_ws, has_copy) {
            return OwnerAction::AbortSelf;
        }
        let ablation = self.policy.ablation;
        // Ablation: prior-work-style single-link chains — a transaction
        // already in a chain never forwards again.
        if ablation.single_link_chains && self.cores[core].pic.pic.is_set() {
            return OwnerAction::AbortSelf;
        }
        match chats_resolve_bounded(self.cores[core].pic, req.pic, self.policy.pic_range()) {
            ConflictResolution::Forward { local_pic_after } => {
                // Ablation: forbid the Fig. 3F overtake — forwarding that
                // would *raise* an already-set PiC resolves requester-wins.
                if ablation.no_pic_overtake {
                    let before = self.cores[core].pic.pic;
                    if before.is_set() && local_pic_after != before {
                        return OwnerAction::AbortSelf;
                    }
                }
                // The producer adopts its post-forwarding PiC before
                // responding (Fig. 3).
                self.cores[core].pic.pic = local_pic_after;
                OwnerAction::Forward(Some(local_pic_after))
            }
            ConflictResolution::AbortLocal => OwnerAction::AbortSelf,
        }
    }

    /// Is this block eligible for speculative forwarding (§VI-D)?
    fn forwarding_allowed(&self, core: usize, req: &Request, in_ws: bool, has_copy: bool) -> bool {
        if !has_copy {
            return false; // nothing to forward
        }
        if in_ws {
            return true; // write-set blocks forward under every ForwardSet
        }
        // Read-set conflict.
        if !self.policy.forward_set.forwards_read_set() {
            return false;
        }
        if self.policy.forward_set.restricts_inflight_writes() {
            // Rrestrict/W heuristic: skip blocks this transaction is
            // predicted to overwrite shortly (trained on prior attempts).
            if self.cores[core]
                .predicted_writes()
                .is_some_and(|s| s.contains(&req.line))
            {
                return false;
            }
        }
        true
    }
}
