//! The atomicity oracle.
//!
//! The paper's correctness argument (§III-C) is that every access of a
//! committed transaction behaves *as if performed atomically at commit
//! time* — speculative forwarding is "only value speculation" and the
//! validation machinery guarantees the speculated value equals the value
//! the location holds when the transaction serializes.
//!
//! This instrument checks exactly that, live: while a transaction runs,
//! the oracle records every transactionally loaded word (first observation
//! wins) and every stored word; at commit it compares each *read-only*
//! observation against the globally committed value at that instant. Any
//! mismatch is a serializability violation that value validation failed to
//! catch — a protocol bug, reported immediately.
//!
//! The oracle is enabled via [`crate::Tuning::check_atomicity`] and is used
//! throughout the test suite; it costs a hash-map per core when on and
//! nothing when off.

use chats_core::fasthash::FastHashMap;
use chats_mem::Addr;

/// Per-core observation log for the current transaction attempt.
#[derive(Debug, Default)]
pub(crate) struct Oracle {
    enabled: bool,
    /// word address -> first transactionally loaded value
    reads: FastHashMap<u64, u64>,
    /// word addresses the transaction itself wrote (exempt from the
    /// read check — the transaction is the committer of those values)
    writes: FastHashMap<u64, u64>,
}

impl Oracle {
    pub(crate) fn enable(&mut self) {
        self.enabled = true;
    }

    pub(crate) fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a transactional load of `addr` observing `value`.
    pub(crate) fn note_read(&mut self, addr: Addr, value: u64) {
        if self.enabled {
            self.reads.entry(addr.0).or_insert(value);
        }
    }

    /// Records a transactional store of `value` to `addr`.
    pub(crate) fn note_write(&mut self, addr: Addr, value: u64) {
        if self.enabled {
            self.writes.insert(addr.0, value);
        }
    }

    /// `true` if the transaction itself wrote `addr` (such reads observe
    /// the transaction's own tentative value, exempt from consistency
    /// checks).
    pub(crate) fn wrote(&self, addr: u64) -> bool {
        self.writes.contains_key(&addr)
    }

    /// Clears the log (abort or commit).
    pub(crate) fn reset(&mut self) {
        self.reads.clear();
        self.writes.clear();
    }

    /// At commit: every read-only observation must match the committed
    /// value `lookup` reports *now*. Returns the first violation as
    /// (address, observed, committed).
    pub(crate) fn check_commit(
        &self,
        mut lookup: impl FnMut(Addr) -> u64,
    ) -> Result<(), (u64, u64, u64)> {
        if !self.enabled {
            return Ok(());
        }
        for (&a, &observed) in &self.reads {
            if self.writes.contains_key(&a) {
                continue; // our own write defines this word's value
            }
            let committed = lookup(Addr(a));
            if committed != observed {
                return Err((a, observed, committed));
            }
        }
        Ok(())
    }

    /// The transaction's writes, for diagnostics and tests.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn writes(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.writes.iter().map(|(a, v)| (*a, *v))
    }

    /// The transaction's first-read observations.
    pub(crate) fn read_log(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.reads.iter().map(|(a, v)| (*a, *v))
    }

    /// Serializes the observation log (maps spill in sorted-key order).
    pub(crate) fn save_state(&self, w: &mut chats_snap::SnapWriter) {
        use chats_snap::Snap;
        self.enabled.save(w);
        self.reads.save(w);
        self.writes.save(w);
    }

    /// Restores state captured by [`Oracle::save_state`].
    pub(crate) fn restore_state(
        &mut self,
        r: &mut chats_snap::SnapReader<'_>,
    ) -> Result<(), chats_snap::SnapError> {
        use chats_snap::Snap;
        self.enabled = Snap::load(r)?;
        self.reads = Snap::load(r)?;
        self.writes = Snap::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_oracle_accepts_everything() {
        let o = Oracle::default();
        assert!(o.check_commit(|_| 999).is_ok());
    }

    #[test]
    fn matching_reads_pass() {
        let mut o = Oracle::default();
        o.enable();
        o.note_read(Addr(8), 5);
        assert!(o.check_commit(|a| if a.0 == 8 { 5 } else { 0 }).is_ok());
    }

    #[test]
    fn stale_read_is_reported() {
        let mut o = Oracle::default();
        o.enable();
        o.note_read(Addr(8), 5);
        assert_eq!(o.check_commit(|_| 6), Err((8, 5, 6)));
    }

    #[test]
    fn own_writes_are_exempt() {
        let mut o = Oracle::default();
        o.enable();
        o.note_read(Addr(8), 5);
        o.note_write(Addr(8), 7);
        // Committed value is our own 7, not the 5 we first read.
        assert!(o.check_commit(|_| 7).is_ok());
    }

    #[test]
    fn first_observation_wins() {
        let mut o = Oracle::default();
        o.enable();
        o.note_read(Addr(8), 5);
        o.note_read(Addr(8), 6); // later re-read inside the tx is ignored
        assert!(o.check_commit(|_| 5).is_ok());
    }

    #[test]
    fn reset_clears_log() {
        let mut o = Oracle::default();
        o.enable();
        o.note_read(Addr(8), 5);
        o.note_write(Addr(16), 2);
        o.reset();
        assert!(o.check_commit(|_| 0).is_ok());
        assert_eq!(o.writes().count(), 0);
    }
}
