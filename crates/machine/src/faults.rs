//! Machine-side fault injection and the progress watchdog.
//!
//! This module is the timing-machine half of [`chats_faults`]: the pure
//! decision state machine lives there (seeded, serializable, content-
//! hashable), while the code here applies its decisions to the protocol —
//! perturbing interconnect sends, injecting spurious HTM events at core
//! steps, and watching per-core commit progress so injected hangs surface
//! as a structured [`FailureReport`] instead of a silent timeout.
//!
//! Everything is gated on `Machine::faults` / `Machine::watchdog` being
//! installed: a machine without a fault plan takes exactly one extra
//! branch per interconnect send and per popped event, consumes no extra
//! RNG draws, and is bit-identical to builds that predate fault injection.

use crate::core_state::ExecMode;
use crate::machine::{Machine, SimError};
use crate::msg::{CoreMsg, DirMsg, Event};
use crate::trace::{RingSink, Trace, TraceEvent};
use chats_core::{AbortCause, Pic};
use chats_faults::{FaultKind, FaultPlan, FaultState};
use chats_mem::LineAddr;
use chats_sim::Cycle;
use std::collections::BTreeMap;
use std::fmt;

/// Trailing trace events embedded in a [`FailureReport`].
const REPORT_EVENTS: usize = 32;

/// Ring capacity auto-installed by [`Machine::set_watchdog`] when tracing
/// is off, so failure reports always carry recent protocol history.
const REPORT_RING: usize = 256;

/// Delivery-sequencing node id for the directory (cores use their index).
const DIR_NODE: usize = usize::MAX;

/// Per-core state captured at the instant the progress watchdog fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreSnapshot {
    /// Core index.
    pub core: usize,
    /// The thread halted (ran to completion).
    pub halted: bool,
    /// Execution mode at capture time.
    pub mode: ExecMode,
    /// Why the core is parked, if it is (debug-formatted `WaitReason`).
    pub waiting: String,
    /// Position-in-Chain register.
    pub pic: Pic,
    /// The `Cons` bit: consuming unvalidated speculative data.
    pub cons: bool,
    /// VSB entries still awaiting validation.
    pub vsb_held: usize,
    /// Outstanding demand miss, if any.
    pub pending_line: Option<LineAddr>,
    /// Validation probe in flight, if any — a stuck one with no matching
    /// response is the classic injected-hang signature.
    pub val_req: Option<LineAddr>,
    /// The core's attempt epoch.
    pub epoch: u64,
    /// Aborted attempts of the current transaction.
    pub attempts: u32,
    /// The current transaction was demoted to requester-wins by the
    /// graceful-degradation ladder.
    pub demoted: bool,
    /// Cycle of the last observed progress (commit, fallback completion
    /// or halt); 0 if none yet.
    pub last_progress: u64,
}

impl fmt::Display for CoreSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "core{}: halted={} mode={:?} wait={} pic={:?} cons={} vsb={} pend={:?} val={:?} \
             epoch={} attempts={} demoted={} last_progress={}",
            self.core,
            self.halted,
            self.mode,
            self.waiting,
            self.pic,
            self.cons,
            self.vsb_held,
            self.pending_line,
            self.val_req,
            self.epoch,
            self.attempts,
            self.demoted,
            self.last_progress,
        )
    }
}

/// Structured diagnosis produced when the progress watchdog declares the
/// run stuck: which cores starved, who holds the fallback lock, a full
/// per-core [`CoreSnapshot`] table and the last few trace events.
///
/// Carried by [`SimError::WatchdogStall`]; its [`fmt::Display`] renders
/// the whole report, so `chats-check` and the runner can surface it
/// verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureReport {
    /// Cycle at which the watchdog fired.
    pub at_cycle: u64,
    /// The configured no-progress horizon, in cycles.
    pub horizon: u64,
    /// Cores with no progress for more than a horizon (or, at queue
    /// drain, all live cores).
    pub stalled_cores: Vec<usize>,
    /// Current fallback-lock owner, if any.
    pub lock_holder: Option<usize>,
    /// Faults injected up to this point (0 for a watch-only plan).
    pub fault_injections: u64,
    /// Snapshot of every core.
    pub cores: Vec<CoreSnapshot>,
    /// The most recent trace events, oldest first, pre-formatted.
    pub recent_events: Vec<String>,
    /// Full state commitment of the machine at the instant the watchdog
    /// fired (see `Machine::state_commitment`). Two runs that stall
    /// identically carry identical commitments, so reproducers can assert
    /// the replay reached the very same stuck state.
    pub state_commitment: u64,
}

impl fmt::Display for FailureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "no progress within {} cycles at cycle {} on core(s) {:?} \
             (lock holder: {}, faults injected: {})",
            self.horizon,
            self.at_cycle,
            self.stalled_cores,
            match self.lock_holder {
                Some(c) => format!("core{c}"),
                None => "none".to_string(),
            },
            self.fault_injections,
        )?;
        writeln!(f, "  state commitment: {:016x}", self.state_commitment)?;
        for c in &self.cores {
            writeln!(f, "  {c}")?;
        }
        if !self.recent_events.is_empty() {
            writeln!(f, "  last {} trace event(s):", self.recent_events.len())?;
            for e in &self.recent_events {
                writeln!(f, "    {e}")?;
            }
        }
        Ok(())
    }
}

/// The progress watchdog: per-core last-progress cycle stamps plus a
/// coarse periodic scan (every quarter horizon), so the per-event cost is
/// a single comparison.
#[derive(Debug, Clone)]
pub(crate) struct Watchdog {
    horizon: u64,
    check_every: u64,
    next_check: u64,
    last_progress: Vec<u64>,
}

impl Watchdog {
    fn new(horizon: u64, cores: usize) -> Watchdog {
        let check_every = (horizon / 4).max(1);
        Watchdog {
            horizon,
            check_every,
            // The earliest possible firing is one full horizon in.
            next_check: horizon,
            last_progress: vec![0; cores],
        }
    }
}

impl chats_snap::Snap for Watchdog {
    fn save(&self, w: &mut chats_snap::SnapWriter) {
        w.u64(self.horizon);
        w.u64(self.check_every);
        w.u64(self.next_check);
        self.last_progress.save(w);
    }
    fn load(r: &mut chats_snap::SnapReader<'_>) -> Result<Self, chats_snap::SnapError> {
        let horizon = r.u64()?;
        if horizon == 0 {
            return Err(r.err("watchdog horizon must be nonzero"));
        }
        Ok(Watchdog {
            horizon,
            check_every: r.u64()?,
            next_check: r.u64()?,
            last_progress: chats_snap::Snap::load(r)?,
        })
    }
}

impl Machine {
    /// Installs `plan`: seeds the injection state machine from the
    /// machine's own seed (so identical `(seed, plan)` pairs inject
    /// identically) and arms the progress watchdog when the plan carries a
    /// nonzero horizon. An [empty](FaultPlan::is_empty) plan installs no
    /// injector — a watch-only plan (horizon set, all knobs zero) arms
    /// just the watchdog. Call before [`Machine::run`].
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        if plan.watchdog_horizon > 0 {
            self.set_watchdog(plan.watchdog_horizon);
        }
        self.faults = if plan.is_empty() {
            None
        } else {
            Some(FaultState::new(plan.clone(), self.seed))
        };
    }

    /// Arms the progress watchdog: a loaded, unhalted core that records no
    /// progress (commit, fallback-section completion or halt) for more
    /// than `horizon` cycles ends the run in
    /// [`SimError::WatchdogStall`] carrying a [`FailureReport`]. When
    /// tracing is off, a small bounded ring is installed so the report can
    /// include recent protocol history.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is 0 (use [`FaultPlan::is_empty`] plans to run
    /// unwatched).
    pub fn set_watchdog(&mut self, horizon: u64) {
        assert!(horizon > 0, "a watchdog needs a nonzero horizon");
        if !self.trace.enabled() {
            self.trace = Trace::Ring(RingSink::new(REPORT_RING));
        }
        self.watchdog = Some(Watchdog::new(horizon, self.cores.len()));
    }

    /// Total faults injected so far (0 without a plan).
    #[must_use]
    pub fn fault_injections(&self) -> u64 {
        self.faults.as_ref().map_or(0, FaultState::injected_total)
    }

    /// Injected-fault counts keyed by [`FaultKind::label`], zeros omitted
    /// (empty without a plan).
    #[must_use]
    pub fn fault_injection_counts(&self) -> BTreeMap<&'static str, u64> {
        self.faults
            .as_ref()
            .map(FaultState::injection_counts)
            .unwrap_or_default()
    }

    /// Records progress on `core` for the watchdog (no-op when unarmed).
    #[inline]
    pub(crate) fn watchdog_progress(&mut self, core: usize) {
        if let Some(wd) = self.watchdog.as_mut() {
            wd.last_progress[core] = self.clock.0;
        }
    }

    /// Periodic watchdog scan, called once per popped event (cheap: one
    /// comparison until a scan is due). Returns the terminal error when
    /// some core starved past the horizon.
    pub(crate) fn watchdog_check(&mut self) -> Option<SimError> {
        let now = self.clock.0;
        let (horizon, stalled) = {
            let wd = self.watchdog.as_mut()?;
            if now < wd.next_check {
                return None;
            }
            wd.next_check = now + wd.check_every;
            let stalled: Vec<usize> = self
                .cores
                .iter()
                .enumerate()
                .filter(|&(i, c)| {
                    c.vm.is_some()
                        && !c.halted
                        && now.saturating_sub(wd.last_progress[i]) > wd.horizon
                })
                .map(|(i, _)| i)
                .collect();
            (wd.horizon, stalled)
        };
        if stalled.is_empty() {
            return None;
        }
        Some(self.watchdog_fire(horizon, stalled))
    }

    /// Drain-time watchdog: if the event queue emptied with live threads
    /// while the watchdog is armed, every live core is by definition
    /// permanently stuck (no event will ever wake it) — report that as a
    /// watchdog failure rather than a bare deadlock, regardless of how
    /// much horizon remained.
    pub(crate) fn watchdog_drain_report(&mut self) -> Option<SimError> {
        let horizon = self.watchdog.as_ref()?.horizon;
        let stalled: Vec<usize> = self
            .cores
            .iter()
            .enumerate()
            .filter(|&(_, c)| c.vm.is_some() && !c.halted)
            .map(|(i, _)| i)
            .collect();
        if stalled.is_empty() {
            return None;
        }
        Some(self.watchdog_fire(horizon, stalled))
    }

    fn watchdog_fire(&mut self, horizon: u64, stalled: Vec<usize>) -> SimError {
        // Hash before recording WatchdogFired: trace sinks are outside the
        // commitment, but keeping the capture point first makes the value
        // independent of whatever the trace machinery does below.
        let state_commitment = self.state_commitment().full;
        for &core in &stalled {
            self.trace.record(TraceEvent::WatchdogFired {
                at: self.clock,
                core,
            });
        }
        let cores: Vec<CoreSnapshot> = (0..self.cores.len())
            .map(|i| self.core_snapshot(i))
            .collect();
        let events = self.trace.events();
        let skip = events.len().saturating_sub(REPORT_EVENTS);
        let recent_events: Vec<String> = events[skip..].iter().map(ToString::to_string).collect();
        let report = FailureReport {
            at_cycle: self.clock.0,
            horizon,
            stalled_cores: stalled,
            lock_holder: self.lock.holder(),
            fault_injections: self.fault_injections(),
            cores,
            recent_events,
            state_commitment,
        };
        SimError::WatchdogStall {
            report: Box::new(report),
        }
    }

    fn core_snapshot(&self, core: usize) -> CoreSnapshot {
        let c = &self.cores[core];
        CoreSnapshot {
            core,
            halted: c.halted,
            mode: c.mode,
            waiting: format!("{:?}", c.waiting),
            pic: c.pic.pic,
            cons: c.pic.cons,
            vsb_held: c.vsb.len(),
            pending_line: c.pending_mem.map(|p| p.line),
            val_req: c.val_req,
            epoch: c.epoch,
            attempts: c.retry.attempts(),
            demoted: c.retry.demoted(),
            last_progress: self.watchdog.as_ref().map_or(0, |w| w.last_progress[core]),
        }
    }

    /// HTM-event injection at a `CoreStep`: freeze/slowdown windows
    /// reschedule the step; spurious aborts and forced VSB evictions kill
    /// the running attempt (feeding the degradation ladder via
    /// `RetryManager::note_fault`). Returns `true` when the step was
    /// consumed by an injection. Only called with a fault state installed.
    pub(crate) fn core_fault_step(&mut self, core: usize) -> bool {
        let now = self.clock.0;
        let in_tx = self.cores[core].in_tx();
        let vsb_loaded = !self.cores[core].vsb.is_empty();
        let epoch = self.cores[core].epoch;
        let f = self.faults.as_mut().expect("core_fault_step without plan");
        if let Some(d) = f.freeze() {
            self.trace.record(TraceEvent::FaultInjected {
                at: self.clock,
                core,
                kind: FaultKind::Freeze,
            });
            self.events
                .push(self.clock + d, Event::CoreStep { core, epoch });
            return true;
        }
        if let Some(d) = f.slowdown() {
            self.trace.record(TraceEvent::FaultInjected {
                at: self.clock,
                core,
                kind: FaultKind::Slowdown,
            });
            self.events
                .push(self.clock + d, Event::CoreStep { core, epoch });
            return true;
        }
        if in_tx && f.spurious_abort(now) {
            self.trace.record(TraceEvent::FaultInjected {
                at: self.clock,
                core,
                kind: FaultKind::SpuriousAbort,
            });
            self.cores[core].retry.note_fault();
            self.do_abort(core, AbortCause::Other);
            return true;
        }
        if in_tx && vsb_loaded && f.vsb_evict() {
            self.trace.record(TraceEvent::FaultInjected {
                at: self.clock,
                core,
                kind: FaultKind::VsbEvict,
            });
            self.cores[core].retry.note_fault();
            // Losing an unvalidated speculative line is a capacity-class
            // abort: the write-set can no longer be contained.
            self.do_abort(core, AbortCause::Capacity);
            return true;
        }
        false
    }

    /// NoC perturbation for a core→directory send. Returns the adjusted
    /// arrival, or `None` when the message was dropped (drop-with-timeout:
    /// a `MemRetry` is scheduled so the requester re-issues).
    ///
    /// Only *retryable demand requests* are droppable: the requester
    /// re-issues iff `pending_mem` still matches. Validation probes have
    /// no retry path — dropping one would hang the core forever, which is
    /// the watchdog's job to diagnose, not the drop knob's job to cause;
    /// lost validation *responses* model that scenario instead.
    pub(crate) fn fault_adjust_dir_send(
        &mut self,
        from_core: usize,
        mut arrive: Cycle,
        msg: &DirMsg,
    ) -> Option<Cycle> {
        let retryable = match msg {
            DirMsg::Request(req) => {
                let c = &self.cores[from_core];
                req.epoch == c.epoch
                    && c.val_req != Some(req.line)
                    && c.pending_mem.is_some_and(|pm| pm.line == req.line)
            }
            _ => false,
        };
        let f = self.faults.as_mut().expect("fault hook without plan");
        if retryable && f.drop_request() {
            let timeout = f.drop_timeout();
            self.trace.record(TraceEvent::FaultInjected {
                at: self.clock,
                core: from_core,
                kind: FaultKind::Drop,
            });
            let epoch = self.cores[from_core].epoch;
            self.events.push(
                self.clock + timeout,
                Event::MemRetry {
                    core: from_core,
                    epoch,
                },
            );
            return None;
        }
        if let Some(d) = f.delay_jitter() {
            arrive += d;
            self.trace.record(TraceEvent::FaultInjected {
                at: self.clock,
                core: from_core,
                kind: FaultKind::Delay,
            });
        }
        if let Some(d) = f.reorder_hold() {
            arrive += d;
            self.trace.record(TraceEvent::FaultInjected {
                at: self.clock,
                core: from_core,
                kind: FaultKind::Reorder,
            });
        }
        Some(Cycle(f.sequence(DIR_NODE, arrive.0)))
    }

    /// NoC perturbation for a core-bound send (from the directory or a
    /// peer core). Returns `(arrival, duplicate_arrival)` — or `None`
    /// when a validation response was dropped outright (the injected-hang
    /// scenario the watchdog exists for).
    ///
    /// Only `Data`/`SpecResp` are duplicable: the receive paths match
    /// duplicates against nothing outstanding and drop them, whereas a
    /// duplicated `Probe`/`Inv`/`Nack` could double-resolve a conflict or
    /// double-issue a request, which no real NoC deduplication layer
    /// would permit either.
    pub(crate) fn fault_adjust_core_send(
        &mut self,
        to: usize,
        mut arrive: Cycle,
        msg: &CoreMsg,
    ) -> Option<(Cycle, Option<Cycle>)> {
        let validation_resp = match msg {
            CoreMsg::Data { line, epoch, .. } | CoreMsg::SpecResp { line, epoch, .. } => {
                *epoch == self.cores[to].epoch && self.cores[to].val_req == Some(*line)
            }
            _ => false,
        };
        let duplicable = matches!(msg, CoreMsg::Data { .. } | CoreMsg::SpecResp { .. });
        let f = self.faults.as_mut().expect("fault hook without plan");
        if validation_resp {
            if f.drop_validation_data() {
                self.trace.record(TraceEvent::FaultInjected {
                    at: self.clock,
                    core: to,
                    kind: FaultKind::ValidationDrop,
                });
                return None;
            }
            if let Some(d) = f.validation_delay() {
                arrive += d;
                self.trace.record(TraceEvent::FaultInjected {
                    at: self.clock,
                    core: to,
                    kind: FaultKind::ValidationDelay,
                });
            }
        }
        if let Some(d) = f.delay_jitter() {
            arrive += d;
            self.trace.record(TraceEvent::FaultInjected {
                at: self.clock,
                core: to,
                kind: FaultKind::Delay,
            });
        }
        if let Some(d) = f.reorder_hold() {
            arrive += d;
            self.trace.record(TraceEvent::FaultInjected {
                at: self.clock,
                core: to,
                kind: FaultKind::Reorder,
            });
        }
        let arrive = Cycle(f.sequence(to, arrive.0));
        let dup = if duplicable && f.duplicate() {
            self.trace.record(TraceEvent::FaultInjected {
                at: self.clock,
                core: to,
                kind: FaultKind::Duplicate,
            });
            Some(Cycle(f.sequence(to, arrive.0 + 1)))
        } else {
            None
        };
        Some((arrive, dup))
    }
}
