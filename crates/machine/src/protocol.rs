//! Coherence protocol: directory request servicing, owner probes, sharer
//! invalidations and response handling at cores.

use crate::conflict::OwnerAction;
use crate::core_state::ExecMode;
use crate::dir::DirState;
use crate::machine::Machine;
use crate::msg::{CoreMsg, DirMsg, Event, ProbeOutcome, Request};
use chats_core::AbortCause;
use chats_mem::{CoherenceState, Line, LineAddr};
use chats_noc::MsgClass;

impl Machine {
    /// Entry point for all directory-bound messages.
    pub(crate) fn dir_recv(&mut self, msg: DirMsg) {
        match msg {
            DirMsg::Request(req) => {
                let dl = self.dir.line_mut(req.line);
                if dl.busy {
                    dl.queue.push_back(req);
                } else {
                    self.dir_process(req);
                }
            }
            DirMsg::ProbeDone { req, outcome } => self.dir_probe_done(req, outcome),
            DirMsg::InvAck { req, core, refused } => self.dir_inv_ack(req, core, refused),
            DirMsg::WbTiming => {} // value already applied synchronously
        }
    }

    /// Services a request for a non-busy line.
    fn dir_process(&mut self, req: Request) {
        if self.watching(req.line) {
            let msg = format!(
                "dir_process core{} getx={} epoch={} state={:?}",
                req.core,
                req.getx,
                req.epoch,
                self.dir.state_of(req.line)
            );
            self.watch_push(msg);
        }
        let dir_latency = self.cfg.mem.dir_latency;
        // Classify the request against the current line state in one
        // borrow, without cloning the sharer list (`state_of` copies the
        // whole `Vec`, and this runs once per directory request). The
        // `others` allocation survives only on the path that actually
        // sends invalidations.
        enum Disposition {
            Uncached,
            SharedRead,
            SharedSolo,
            SharedInv(Vec<usize>),
            OwnedSelf,
            OwnedOther(usize),
        }
        let disp = match &self.dir.line_mut(req.line).state {
            DirState::Uncached => Disposition::Uncached,
            DirState::Shared(sharers) => {
                if !req.getx {
                    Disposition::SharedRead
                } else {
                    let others: Vec<usize> =
                        sharers.iter().copied().filter(|&s| s != req.core).collect();
                    if others.is_empty() {
                        Disposition::SharedSolo
                    } else {
                        Disposition::SharedInv(others)
                    }
                }
            }
            DirState::Owned(owner) if *owner == req.core => Disposition::OwnedSelf,
            DirState::Owned(owner) => Disposition::OwnedOther(*owner),
        };
        match disp {
            Disposition::Uncached => {
                let cold = self.dir.touch(req.line);
                let lat = dir_latency + if cold { self.cfg.mem.mem_latency } else { 0 };
                let data = self.dir.read(req.line);
                // MESI: grant E even on a read when no one else has a copy.
                self.dir.line_mut(req.line).state = DirState::Owned(req.core);
                self.respond_data(req, data, true, lat);
            }
            Disposition::SharedRead => {
                self.dir.touch(req.line);
                let data = self.dir.read(req.line);
                let dl = self.dir.line_mut(req.line);
                if let DirState::Shared(list) = &mut dl.state {
                    if !list.contains(&req.core) {
                        list.push(req.core);
                    }
                }
                self.respond_data(req, data, false, dir_latency);
            }
            Disposition::SharedSolo => {
                self.dir.touch(req.line);
                let data = self.dir.read(req.line);
                self.dir.line_mut(req.line).state = DirState::Owned(req.core);
                self.respond_data(req, data, true, dir_latency);
            }
            Disposition::SharedInv(others) => {
                self.dir.touch(req.line);
                let dl = self.dir.line_mut(req.line);
                dl.busy = true;
                dl.pending_invs = others.len();
                dl.inv_refused = false;
                dl.invalidated.clear();
                for s in others {
                    self.dir_send_to_core(s, MsgClass::Control, CoreMsg::Inv { req }, dir_latency);
                }
            }
            Disposition::OwnedSelf => {
                self.dir.touch(req.line);
                // The owner silently dropped its copy and is asking
                // again: service from the store, ownership unchanged.
                let data = self.dir.read(req.line);
                self.respond_data(req, data, true, dir_latency);
            }
            Disposition::OwnedOther(owner) => {
                self.dir.touch(req.line);
                self.dir.line_mut(req.line).busy = true;
                self.dir_send_to_core(
                    owner,
                    MsgClass::Control,
                    CoreMsg::Probe { req },
                    dir_latency,
                );
            }
        }
    }

    fn respond_data(&mut self, req: Request, data: Line, excl: bool, delay: u64) {
        self.dir_send_to_core(
            req.core,
            MsgClass::Data,
            CoreMsg::Data {
                line: req.line,
                data,
                excl,
                epoch: req.epoch,
            },
            delay,
        );
    }

    /// An owner probe concluded; settle directory state and unblock.
    fn dir_probe_done(&mut self, req: Request, outcome: ProbeOutcome) {
        if self.watching(req.line) {
            let msg = format!("probe_done req_core{} outcome={outcome:?}", req.core);
            self.watch_push(msg);
        }
        match outcome {
            ProbeOutcome::Shared { owner } => {
                self.dir.line_mut(req.line).state = DirState::Shared(vec![owner, req.core]);
            }
            ProbeOutcome::Transferred => {
                self.dir.line_mut(req.line).state = DirState::Owned(req.core);
            }
            ProbeOutcome::NotServiced => {
                let data = self.dir.read(req.line);
                if req.getx {
                    // Exclusive requests conflict-checked the old owner in
                    // the probe itself (read-signature test), so ownership
                    // may move.
                    self.dir.line_mut(req.line).state = DirState::Owned(req.core);
                    self.respond_data(req, data, true, self.cfg.mem.dir_latency);
                } else {
                    // A shared request to an owner that silently evicted:
                    // the old owner may still hold a *transactional read*
                    // of this line (perfect signatures outlive the cached
                    // copy), so it must stay listed — a future exclusive
                    // request has to probe it or its isolation is lost.
                    let prev_owner = match self.dir.state_of(req.line) {
                        DirState::Owned(o) if o != req.core => Some(o),
                        _ => None,
                    };
                    let mut sharers = vec![req.core];
                    if let Some(o) = prev_owner {
                        sharers.push(o);
                    }
                    self.dir.line_mut(req.line).state = DirState::Shared(sharers);
                    self.respond_data(req, data, false, self.cfg.mem.dir_latency);
                }
            }
            ProbeOutcome::Canceled => {} // speculative forwarding or nack: untouched
        }
        self.dir.line_mut(req.line).busy = false;
        self.dir_unblock(req.line);
    }

    /// A sharer acknowledged (or refused) an invalidation.
    fn dir_inv_ack(&mut self, req: Request, core: usize, refused: bool) {
        let done = {
            let dl = self.dir.line_mut(req.line);
            dl.pending_invs -= 1;
            if refused {
                dl.inv_refused = true;
            } else {
                dl.invalidated.push(core);
            }
            dl.pending_invs == 0
        };
        if !done {
            return;
        }
        let refused_any = {
            let dl = self.dir.line_mut(req.line);
            let invalidated = std::mem::take(&mut dl.invalidated);
            if let DirState::Shared(list) = &mut dl.state {
                list.retain(|c| !invalidated.contains(c));
            }
            dl.busy = false;
            dl.inv_refused
        };
        if refused_any {
            // A power transaction kept its copy: nack the requester.
            self.dir_send_to_core(
                req.core,
                MsgClass::Control,
                CoreMsg::Nack {
                    line: req.line,
                    epoch: req.epoch,
                },
                self.cfg.mem.dir_latency,
            );
        } else {
            let data = self.dir.read(req.line);
            self.dir.line_mut(req.line).state = DirState::Owned(req.core);
            self.respond_data(req, data, true, self.cfg.mem.dir_latency);
        }
        self.dir_unblock(req.line);
    }

    /// Replays queued requests for an unblocked line until one re-blocks
    /// it (or the queue drains).
    fn dir_unblock(&mut self, line: LineAddr) {
        loop {
            let next = {
                let dl = self.dir.line_mut(line);
                if dl.busy {
                    None
                } else {
                    dl.queue.pop_front()
                }
            };
            match next {
                Some(req) => self.dir_process(req),
                None => return,
            }
        }
    }

    // ---- core side ------------------------------------------------------

    /// Entry point for all core-bound messages.
    pub(crate) fn core_recv(&mut self, core: usize, msg: CoreMsg) {
        match msg {
            CoreMsg::Probe { req } => self.core_probe(core, req),
            CoreMsg::Inv { req } => self.core_inv(core, req),
            CoreMsg::Data {
                line,
                data,
                excl,
                epoch,
            } => {
                if epoch != self.cores[core].epoch {
                    self.stale_data(core, line, data, excl);
                } else if self.cores[core].val_req == Some(line) {
                    self.validation_data(core, line, data);
                } else {
                    self.demand_data(core, line, data, excl);
                }
            }
            CoreMsg::SpecResp {
                line,
                data,
                pic,
                epoch,
            } => {
                if epoch != self.cores[core].epoch {
                    // Stale hint: nothing to undo, ownership never moved.
                } else if self.cores[core].val_req == Some(line) {
                    self.validation_spec(core, line, data, pic);
                } else {
                    self.demand_spec(core, line, data, pic);
                }
            }
            CoreMsg::Nack { line, epoch } => {
                if epoch != self.cores[core].epoch {
                    return;
                }
                self.stats.nacks += 1;
                if self.cores[core].val_req == Some(line) {
                    self.validation_nack(core);
                } else if self.cores[core].pending_mem.is_some() {
                    let d = self.tuning.stall_delay + self.rng.below(self.tuning.stall_delay);
                    let epoch = self.cores[core].epoch;
                    self.events
                        .push(self.clock + d, Event::MemRetry { core, epoch });
                }
            }
        }
    }

    /// Directory-forwarded request arriving at this core as owner.
    fn core_probe(&mut self, core: usize, req: Request) {
        if self.watching(req.line) {
            let c = &self.cores[core];
            let msg = format!(
                "probe at core{core} from core{} getx={} in_ws={:?} in_rs={} mode={:?}",
                req.core,
                req.getx,
                c.l1.lookup(req.line).map(|e| e.sm),
                c.read_sig.contains(req.line),
                c.mode
            );
            self.watch_push(msg);
        }
        let (has_copy, in_ws) = {
            let c = &self.cores[core];
            match c.l1.lookup(req.line) {
                Some(e) => (true, e.sm),
                None => (false, false),
            }
        };
        let in_rs = self.cores[core].in_tx() && self.cores[core].read_sig.contains(req.line);
        let conflict = self.cores[core].in_tx() && (in_ws || (req.getx && in_rs));

        if !conflict {
            self.probe_service(core, req);
            return;
        }

        self.stats.conflicts += 1;
        self.cores[core].attempt_conflicted = true;
        // Schedule exploration may substitute either protocol-legal
        // alternative (NACK or requester-wins) for whatever the policy
        // decides. The override is consulted *before* `decide_conflict` so
        // an overridden forwarding never mutates the producer's PiC.
        let action = if self.hook_active() {
            use chats_core::ConflictOverride;
            let choice = self.decide(
                chats_sim::DecisionKind::ConflictAction,
                Some(core),
                ConflictOverride::COUNT,
            );
            match ConflictOverride::from_index(choice) {
                ConflictOverride::FollowPolicy => self.decide_conflict(core, &req, in_ws, has_copy),
                ConflictOverride::ForceNack => OwnerAction::Nack,
                ConflictOverride::ForceRequesterWins => OwnerAction::AbortSelf,
            }
        } else {
            self.decide_conflict(core, &req, in_ws, has_copy)
        };
        match action {
            OwnerAction::Forward(pic) => {
                self.cores[core].attempt_forwarded = true;
                self.stats.forwardings += 1;
                self.trace.record(crate::trace::TraceEvent::Forward {
                    at: self.clock,
                    from: core,
                    to: req.core,
                    line: req.line,
                    pic,
                });
                let data = self.cores[core]
                    .l1
                    .lookup(req.line)
                    .expect("forwarding requires a cached copy")
                    .data;
                self.core_send_to_core(
                    core,
                    req.core,
                    MsgClass::Data,
                    CoreMsg::SpecResp {
                        line: req.line,
                        data,
                        pic,
                        epoch: req.epoch,
                    },
                    1,
                );
                self.send_to_dir(
                    core,
                    MsgClass::Control,
                    DirMsg::ProbeDone {
                        req,
                        outcome: ProbeOutcome::Canceled,
                    },
                    1,
                );
            }
            OwnerAction::AbortSelf => {
                self.do_abort(core, AbortCause::Conflict);
                // After the abort the speculative copy is gone; any
                // surviving non-speculative copy is serviced normally.
                self.probe_service(core, req);
            }
            OwnerAction::Nack => {
                self.core_send_to_core(
                    core,
                    req.core,
                    MsgClass::Control,
                    CoreMsg::Nack {
                        line: req.line,
                        epoch: req.epoch,
                    },
                    1,
                );
                self.send_to_dir(
                    core,
                    MsgClass::Control,
                    DirMsg::ProbeDone {
                        req,
                        outcome: ProbeOutcome::Canceled,
                    },
                    1,
                );
            }
        }
    }

    /// Conflict-free probe servicing: downgrade or transfer ownership.
    fn probe_service(&mut self, core: usize, req: Request) {
        let outcome;
        let mut data_to_req: Option<Line> = None;
        {
            let c = &mut self.cores[core];
            if req.getx {
                match c.l1.invalidate(req.line) {
                    Some(e) => {
                        data_to_req = Some(e.data);
                        outcome = ProbeOutcome::Transferred;
                        if e.state == CoherenceState::Modified {
                            self.dir.store.write_line(req.line, e.data);
                        }
                    }
                    None => outcome = ProbeOutcome::NotServiced,
                }
            } else {
                match c.l1.lookup_mut(req.line) {
                    Some(e) => {
                        data_to_req = Some(e.data);
                        if e.state == CoherenceState::Modified {
                            self.dir.store.write_line(req.line, e.data);
                        }
                        e.state = CoherenceState::Shared;
                        outcome = ProbeOutcome::Shared { owner: core };
                    }
                    None => outcome = ProbeOutcome::NotServiced,
                }
            }
        }
        if let Some(data) = data_to_req {
            self.core_send_to_core(
                core,
                req.core,
                MsgClass::Data,
                CoreMsg::Data {
                    line: req.line,
                    data,
                    excl: req.getx,
                    epoch: req.epoch,
                },
                1,
            );
        }
        self.send_to_dir(
            core,
            MsgClass::Control,
            DirMsg::ProbeDone { req, outcome },
            1,
        );
    }

    /// Invalidation of a shared copy; conflicts resolve requester-wins
    /// unless the sharer holds the power token.
    fn core_inv(&mut self, core: usize, req: Request) {
        if self.watching(req.line) {
            let c = &self.cores[core];
            let msg = format!(
                "inv at core{core} for core{} in_rs={} mode={:?}",
                req.core,
                c.read_sig.contains(req.line),
                c.mode
            );
            self.watch_push(msg);
        }
        let conflicting = self.cores[core].in_tx() && self.cores[core].read_sig.contains(req.line);
        let mut refused = false;
        if conflicting {
            self.stats.conflicts += 1;
            self.cores[core].attempt_conflicted = true;
            if self.cores[core].is_power && !req.power {
                // Power transactions may nack without losing their data.
                refused = true;
            } else {
                self.do_abort(core, AbortCause::Conflict);
            }
        }
        if !refused {
            self.cores[core].l1.invalidate(req.line);
        }
        self.send_to_dir(
            core,
            MsgClass::Control,
            DirMsg::InvAck { req, core, refused },
            1,
        );
    }

    /// Response for a request issued by an attempt that has since aborted.
    /// The directory may have recorded us as owner/sharer, but it may also
    /// have *moved the line on* since (a later probe found no copy here).
    /// Installing the stale line could clobber a newer attempt's
    /// speculative data or claim ownership we no longer have, so the
    /// response is dropped — the protocol already tolerates caches that
    /// silently lack lines the directory attributes to them.
    fn stale_data(&mut self, _core: usize, _line: LineAddr, _data: Line, _excl: bool) {}

    /// Completion of a demand miss.
    fn demand_data(&mut self, core: usize, line: LineAddr, data: Line, excl: bool) {
        if self.watching(line) {
            let msg = format!("demand_data core{core} excl={excl} data={data:?}");
            self.watch_push(msg);
        }
        let pm = match self.cores[core].pending_mem.take() {
            Some(pm) if pm.line == line => pm,
            other => {
                // A response that matches nothing outstanding: drop it for
                // the same reason stale responses are dropped.
                self.cores[core].pending_mem = other;
                return;
            }
        };
        let state = if excl {
            CoherenceState::Exclusive
        } else {
            CoherenceState::Shared
        };
        if !self.l1_insert(core, line, state, data) {
            return; // capacity abort
        }
        let in_tx = self.cores[core].in_tx();
        let mut loaded: Option<u64> = None;
        {
            let c = &mut self.cores[core];
            if pm.is_store {
                let e = c.l1.lookup_mut(line).expect("line just inserted");
                if in_tx {
                    // The received data is the committed version and the
                    // store already has it: mark write-set and overwrite.
                    e.sm = true;
                } else {
                    e.state = CoherenceState::Modified;
                }
                e.data.write(pm.addr, pm.store_value);
                if in_tx {
                    c.oracle.note_write(pm.addr, pm.store_value);
                }
                c.vm.as_mut().expect("no thread").complete_store();
            } else {
                if in_tx {
                    c.read_sig.insert(line);
                }
                loaded = Some(
                    c.l1.lookup(line)
                        .expect("line just inserted")
                        .data
                        .read(pm.addr),
                );
            }
        }
        if let Some(v) = loaded {
            if in_tx {
                // Demand data is the committed version by construction.
                self.oracle_read(core, pm.addr, v, false);
            }
            self.cores[core]
                .vm
                .as_mut()
                .expect("no thread")
                .complete_load(v);
        }
        let epoch = self.cores[core].epoch;
        let at = self.clock + self.cfg.mem.l1_hit_latency;
        self.events.push(at, Event::CoreStep { core, epoch });
    }

    /// A speculative response for a demand miss: the consumer side of the
    /// requester-speculates policy (§IV-A).
    fn demand_spec(
        &mut self,
        core: usize,
        line: LineAddr,
        data: Line,
        pic: Option<chats_core::Pic>,
    ) {
        if self.watching(line) {
            let msg = format!("demand_spec core{core} pic={pic:?} data={data:?}");
            self.watch_push(msg);
        }
        use chats_core::{chats_receive_spec, HtmSystem, SpecRespAction};
        if self.cores[core].mode != ExecMode::Tx {
            return; // non-transactional requesters never consume hints
        }
        // Decide acceptance.
        match self.policy.system {
            HtmSystem::Chats | HtmSystem::Pchats => {
                if let Some(p) = pic {
                    match chats_receive_spec(self.cores[core].pic, p) {
                        SpecRespAction::Accept { new_pic } => {
                            self.cores[core].pic.pic = new_pic;
                            if let Some(v) = new_pic.value() {
                                let init =
                                    chats_core::Pic::INIT.value().expect("INIT is a set PiC");
                                self.stats.record_chain_depth(v.abs_diff(init).into());
                            }
                        }
                        SpecRespAction::AbortSelf => {
                            self.do_abort(core, AbortCause::CycleDetected);
                            return;
                        }
                    }
                }
                // `pic == None` (power producer): consume without touching
                // the PiC; validation alone serializes (§VI-B).
            }
            HtmSystem::NaiveRs | HtmSystem::LevcBeIdealized => {}
            HtmSystem::Baseline | HtmSystem::Power => {
                unreachable!("non-forwarding system received a SpecResp")
            }
        }
        // This response must answer the outstanding demand op; a duplicate
        // (e.g. after a nack-retry) answers nothing and is just a hint we
        // ignore.
        match self.cores[core].pending_mem {
            Some(pm) if pm.line == line => {}
            _ => return,
        }
        // Room in the VSB? If not, treat like a stall and retry the access.
        if self.cores[core].vsb.insert(line, data) {
            self.trace.record(crate::trace::TraceEvent::VsbInsert {
                at: self.clock,
                core,
                line,
                occupancy: self.cores[core].vsb.len(),
            });
        } else if !self.cores[core].vsb.contains(line) {
            self.stats.nacks += 1;
            let d = self.tuning.stall_delay;
            let epoch = self.cores[core].epoch;
            self.events
                .push(self.clock + d, Event::MemRetry { core, epoch });
            return;
        }
        self.cores[core].pic.cons = true;
        self.cores[core].levc.note_consumed();
        if !self.l1_insert(core, line, CoherenceState::Exclusive, data) {
            return; // capacity abort (VSB cleared by the abort)
        }
        let pm = self.cores[core]
            .pending_mem
            .take()
            .expect("pending op checked above");
        let mut loaded: Option<u64> = None;
        {
            let c = &mut self.cores[core];
            let e = c.l1.lookup_mut(line).expect("line just inserted");
            e.sm = true;
            e.spec_received = true;
            if pm.is_store {
                e.data.write(pm.addr, pm.store_value);
                c.oracle.note_write(pm.addr, pm.store_value);
                c.vm.as_mut().expect("no thread").complete_store();
            } else {
                let v = e.data.read(pm.addr);
                c.read_sig.insert(line);
                loaded = Some(v);
            }
        }
        if let Some(v) = loaded {
            // Speculative lineage: checked by validation + commit oracle.
            self.oracle_read(core, pm.addr, v, true);
            self.cores[core]
                .vm
                .as_mut()
                .expect("no thread")
                .complete_load(v);
        }
        self.arm_validation(core);
        let epoch = self.cores[core].epoch;
        let at = self.clock + self.cfg.mem.l1_hit_latency;
        self.events.push(at, Event::CoreStep { core, epoch });
    }
}
