//! Core execution: VM stepping, transaction lifecycle, commit and abort.

use crate::core_state::{ExecMode, PendingMem, WaitReason};
use crate::machine::Machine;
use crate::msg::{DirMsg, Event};
use crate::trace::TraceEvent;
use chats_core::{AbortCause, LevcArbiter, RetryVerdict};
use chats_mem::{Addr, CoherenceState, EvictOutcome, LineAddr};
use chats_noc::MsgClass;
use chats_tvm::VmEvent;

impl Machine {
    /// Runs `core`'s VM until it blocks on memory, parks at a transaction
    /// boundary, exhausts its compute slice, or halts.
    pub(crate) fn core_step(&mut self, core: usize) {
        let mut acc: u64 = 0;
        loop {
            if acc >= self.tuning.compute_slice_max {
                let epoch = self.cores[core].epoch;
                let at = self.clock + acc;
                self.events.push(at, Event::CoreStep { core, epoch });
                return;
            }
            let ev = self.cores[core].vm.as_mut().expect("no thread").step();
            match ev {
                VmEvent::Compute(n) => {
                    if n > 64 {
                        // Long pauses become their own event so other cores'
                        // probes interleave accurately.
                        let epoch = self.cores[core].epoch;
                        let at = self.clock + acc + n;
                        self.events.push(at, Event::CoreStep { core, epoch });
                        return;
                    }
                    acc += n * self.cfg.core.cycles_per_op;
                }
                VmEvent::Halted => {
                    self.cores[core].halted = true;
                    self.halted += 1;
                    self.watchdog_progress(core);
                    return;
                }
                VmEvent::TxBegin => {
                    if !self.handle_tx_begin(core) {
                        return;
                    }
                }
                VmEvent::TxEnd => {
                    if !self.handle_tx_end(core) {
                        return;
                    }
                }
                VmEvent::Load(addr) => {
                    if !self.access(core, addr, false, 0, &mut acc) {
                        return;
                    }
                }
                VmEvent::Store(addr, v) => {
                    if !self.access(core, addr, true, v, &mut acc) {
                        return;
                    }
                }
            }
        }
    }

    /// Services one memory access. Returns `true` if it completed locally
    /// (the burst continues) or `false` if the core is now waiting.
    fn access(
        &mut self,
        core: usize,
        addr: Addr,
        is_store: bool,
        value: u64,
        acc: &mut u64,
    ) -> bool {
        let line = addr.line();
        let hit_latency = self.cfg.mem.l1_hit_latency;
        let in_tx = self.cores[core].in_tx();

        // Fast path: service from L1 if permissions allow.
        let mut wb: Option<(LineAddr, chats_mem::Line)> = None;
        let mut serviced: Option<u64> = None; // loaded value (or store sentinel)
        let mut spec_src = false; // value descends from an unvalidated SpecResp
        {
            let c = &mut self.cores[core];
            if let Some(e) = c.l1.lookup_mut(line) {
                if !is_store && e.state.is_readable() {
                    serviced = Some(e.data.read(addr));
                    spec_src = e.spec_received;
                } else if is_store && e.state.is_writable() {
                    if in_tx {
                        if !e.sm {
                            // Lazy versioning: push the committed value down
                            // before the first speculative write (§VI-B).
                            if e.state == CoherenceState::Modified {
                                wb = Some((line, e.data));
                            }
                            e.sm = true;
                        }
                    } else {
                        e.state = CoherenceState::Modified;
                    }
                    e.data.write(addr, value);
                    serviced = Some(0);
                }
            }
        }
        if let Some((l, data)) = wb {
            // Value lands synchronously (keeps the store committed-only);
            // the message is charged for timing/flits.
            self.dir.store.write_line(l, data);
            self.send_to_dir(core, MsgClass::Data, DirMsg::WbTiming, *acc);
        }
        if let Some(v) = serviced {
            if in_tx {
                if is_store {
                    self.cores[core].oracle.note_write(addr, value);
                } else {
                    self.cores[core].read_sig.insert(line);
                    self.oracle_read(core, addr, v, spec_src);
                }
            }
            *acc += hit_latency;
            let vm = self.cores[core].vm.as_mut().expect("no thread");
            if is_store {
                vm.complete_store();
            } else {
                vm.complete_load(v);
            }
            return true;
        }

        // Miss: one outstanding demand request.
        let getx = is_store;
        self.cores[core].pending_mem = Some(PendingMem {
            addr,
            line,
            getx,
            is_store,
            store_value: value,
        });
        self.issue_pending_request(core, *acc);
        false
    }

    /// Handles a `TxBegin` marker. Returns `true` to continue the burst.
    fn handle_tx_begin(&mut self, core: usize) -> bool {
        assert_eq!(
            self.cores[core].mode,
            ExecMode::Plain,
            "nested transactions are not supported"
        );
        // Capture the rollback point (pc is just past TxBegin).
        let snap = self.cores[core].vm.as_ref().expect("no thread").snapshot();
        let site = snap.pc();
        {
            let c = &mut self.cores[core];
            c.snapshot = Some(snap);
            c.tx_site = site;
            c.retry.reset();
        }
        // Eager lock subscription: while some thread runs the fallback
        // path, speculative execution cannot start (lock-based systems).
        if !self.policy.system.uses_power_token() && self.lock.is_held() {
            self.cores[core].waiting = WaitReason::LockToStart;
            self.cores[core].awaiting_retry = true;
            return false;
        }
        self.begin_attempt(core);
        true
    }

    /// Starts (or restarts) a speculative attempt; VM is positioned right
    /// after `TxBegin`.
    pub(crate) fn begin_attempt(&mut self, core: usize) {
        let needs_ts = self.policy.system == chats_core::HtmSystem::LevcBeIdealized;
        // Timestamps are issued once per transaction and kept across
        // retries so the oldest transaction eventually wins.
        if needs_ts && self.cores[core].levc_ts.is_none() {
            let t = self.ts_source.issue();
            self.cores[core].levc_ts = Some(t);
        }
        let c = &mut self.cores[core];
        c.mode = ExecMode::Tx;
        c.attempt_forwarded = false;
        c.attempt_conflicted = false;
        c.naive.reset();
        if needs_ts {
            let t = c.levc_ts.expect("LEVC timestamp set above");
            c.levc = LevcArbiter::begin(t);
        }
        self.stats.tx_attempts += 1;
        let at = self.clock;
        self.trace.record(TraceEvent::TxBegin { at, core });
    }

    /// Handles a `TxEnd` marker. Returns `true` to continue the burst.
    fn handle_tx_end(&mut self, core: usize) -> bool {
        match self.cores[core].mode {
            ExecMode::Fallback => {
                self.lock.release(core);
                self.cores[core].mode = ExecMode::Plain;
                self.trace.record(TraceEvent::FallbackRelease {
                    at: self.clock,
                    core,
                });
                self.watchdog_progress(core);
                self.wake_lock_waiters();
                true
            }
            ExecMode::Tx => {
                if self.cores[core].vsb.is_empty() {
                    // `try_commit` may defer under a schedule hook; the
                    // burst then parks until the CommitRelease event.
                    self.try_commit(core)
                } else {
                    self.cores[core].commit_pending = true;
                    self.trace.record(TraceEvent::ValStallBegin {
                        at: self.clock,
                        core,
                    });
                    self.kick_validation(core);
                    false
                }
            }
            ExecMode::Plain => panic!("TxEnd outside a transaction on core {core}"),
        }
    }

    /// Commits `core`'s transaction now, unless a schedule hook defers it
    /// (bounded times) to let other chain links race the commit order.
    /// Returns `true` if the commit happened; on `false` the core keeps
    /// `commit_pending` set and a `CommitRelease` event is scheduled.
    pub(crate) fn try_commit(&mut self, core: usize) -> bool {
        const MAX_COMMIT_DEFERS: u8 = 4;
        if self.hook_active()
            && self.cores[core].commit_defers < MAX_COMMIT_DEFERS
            && self.decide(chats_sim::DecisionKind::CommitRelease, Some(core), 2) == 1
        {
            let at = self.clock + self.tuning.commit_validation_gap.max(1);
            let c = &mut self.cores[core];
            c.commit_defers += 1;
            let was_pending = c.commit_pending;
            c.commit_pending = true;
            let epoch = c.epoch;
            if !was_pending {
                // A hook-deferred commit stalls the attempt exactly like a
                // draining VSB; account it in the same bucket.
                self.trace.record(TraceEvent::ValStallBegin {
                    at: self.clock,
                    core,
                });
            }
            self.events.push(at, Event::CommitRelease { core, epoch });
            return false;
        }
        self.do_commit(core);
        true
    }

    /// Commits the running transaction (the VSB is empty by construction).
    ///
    /// # Panics
    ///
    /// With the atomicity oracle enabled (and not in record mode), panics
    /// if any transactionally read word does not equal the committed value
    /// at the commit instant — a serializability bug in the protocol,
    /// never a workload condition.
    pub(crate) fn do_commit(&mut self, core: usize) {
        if self.cores[core].commit_pending {
            self.trace.record(TraceEvent::ValStallEnd {
                at: self.clock,
                core,
            });
        }
        self.cores[core].l1.commit_speculative();
        if self.cores[core].oracle.is_enabled() {
            // Snapshot the committed values of every read word, then let
            // the oracle compare (our own writes just became committed).
            let committed_now: chats_core::fasthash::FastHashMap<u64, u64> = self.cores[core]
                .oracle
                .read_log()
                .map(|(a, _)| (a, self.inspect_word(Addr(a))))
                .collect();
            let verdict = self.cores[core]
                .oracle
                .check_commit(|a| committed_now[&a.0]);
            if let Err((a, observed, committed)) = verdict {
                if self.tuning.oracle_record {
                    self.violations.push(crate::Violation::AtomicityAtCommit {
                        core,
                        addr: a,
                        observed,
                        committed,
                        at: self.clock.0,
                    });
                } else {
                    panic!(
                        "atomicity violated at commit on core {core}: word {a:#x} \
                         was read as {observed} but the committed value is {committed}\n{}\nwatch log:\n{}",
                        self.describe_line(Addr(a).line()),
                        self.watch_log().join("\n")
                    );
                }
            }
            self.cores[core].oracle.reset();
        }
        let was_power = {
            let c = &mut self.cores[core];
            debug_assert!(c.vsb.is_empty(), "commit with unvalidated speculative data");
            c.read_sig.clear();
            c.pic.reset();
            c.levc.reset();
            c.levc_ts = None;
            c.naive.reset();
            c.commit_pending = false;
            c.commit_defers = 0;
            c.mode = ExecMode::Plain;
            c.retry.reset();
            let p = c.is_power;
            c.is_power = false;
            p
        };
        self.stats.commits += 1;
        self.watchdog_progress(core);
        self.trace.record(TraceEvent::Commit {
            at: self.clock,
            core,
        });
        if self.cores[core].attempt_conflicted {
            self.stats.conflicted_outcomes.committed += 1;
        }
        if self.cores[core].attempt_forwarded {
            self.stats.forwarder_outcomes.committed += 1;
        }
        if was_power {
            self.token.release(core);
            self.wake_power_waiter();
        }
    }

    /// Aborts the running transaction attempt with `cause` and schedules
    /// what comes next (retry, power escalation, fallback).
    pub(crate) fn do_abort(&mut self, core: usize, cause: AbortCause) {
        debug_assert!(self.cores[core].in_tx(), "abort outside a transaction");
        self.stats.record_abort(cause);
        if self.cores[core].commit_pending {
            self.trace.record(TraceEvent::ValStallEnd {
                at: self.clock,
                core,
            });
        }
        if self.trace.enabled() {
            // The VSB is discarded wholesale below; trace each entry so the
            // reconstructor sees every unvalidated speculation die.
            let evicted: Vec<LineAddr> = self.cores[core].vsb.iter().map(|e| e.addr).collect();
            for line in evicted {
                self.trace.record(TraceEvent::VsbEvict {
                    at: self.clock,
                    core,
                    line,
                });
            }
        }
        self.trace.record(TraceEvent::Abort {
            at: self.clock,
            core,
            cause,
        });
        if self.cores[core].attempt_conflicted {
            self.stats.conflicted_outcomes.aborted += 1;
        }
        if self.cores[core].attempt_forwarded {
            self.stats.forwarder_outcomes.aborted += 1;
        }
        let verdict = {
            let c = &mut self.cores[core];
            // Train the Rrestrict/W predictor with this attempt's writes.
            let (l1, predictor, site) = (&c.l1, &mut c.write_predictor, c.tx_site);
            predictor.entry(site).or_default().extend(
                l1.iter()
                    .filter(|e| e.sm && !e.spec_received)
                    .map(|e| e.addr),
            );
            c.l1.drop_speculative();
            c.read_sig.clear();
            c.vsb.clear();
            c.pic.reset();
            c.levc.reset();
            c.naive.reset();
            c.commit_pending = false;
            c.commit_defers = 0;
            c.val_req = None;
            c.val_timer_armed = false;
            c.pending_mem = None;
            c.oracle.reset();
            c.epoch += 1;
            c.mode = ExecMode::Plain;
            let snap = c.snapshot.clone().expect("abort without snapshot");
            c.vm.as_mut().expect("no thread").restore(&snap);
            c.retry.on_abort(cause)
        };
        let epoch = self.cores[core].epoch;
        match verdict {
            RetryVerdict::Retry => {
                self.cores[core].awaiting_retry = true;
                let d = self.backoff(core);
                self.events
                    .push(self.clock + d, Event::RetryTx { core, epoch });
            }
            RetryVerdict::RequestPower => {
                self.cores[core].awaiting_retry = true;
                if self.token.try_acquire(core) {
                    self.cores[core].is_power = true;
                    self.stats.power_grants += 1;
                    self.events
                        .push(self.clock + 1, Event::RetryTx { core, epoch });
                } else {
                    let d = self.backoff(core);
                    self.events
                        .push(self.clock + d, Event::RetryTx { core, epoch });
                }
            }
            RetryVerdict::Fallback => {
                if self.policy.system.uses_power_token() {
                    // The power token *is* the fallback path in power-based
                    // systems (§VI-D).
                    if self.token.try_acquire(core) {
                        self.cores[core].is_power = true;
                        self.stats.power_grants += 1;
                        self.stats.fallback_acquisitions += 1;
                        self.cores[core].awaiting_retry = true;
                        self.events
                            .push(self.clock + 1, Event::RetryTx { core, epoch });
                    } else {
                        self.cores[core].waiting = WaitReason::PowerToken;
                        self.cores[core].awaiting_retry = true;
                    }
                } else if self.lock.try_acquire(core) {
                    self.enter_fallback(core);
                } else {
                    self.cores[core].waiting = WaitReason::LockToAcquire;
                    self.cores[core].awaiting_retry = true;
                }
            }
        }
    }

    /// Randomized exponential backoff: doubles the window per failed
    /// attempt (capped), which is what keeps requester-wins out of
    /// livelock long enough to use its retry budget.
    fn backoff(&mut self, core: usize) -> u64 {
        let window = self.cores[core]
            .retry
            .backoff_window(self.tuning.backoff_base);
        self.tuning.backoff_base + self.rng.below(window)
    }

    /// Begins non-speculative execution under the global lock; every other
    /// running transaction aborts through its eager lock subscription.
    fn enter_fallback(&mut self, core: usize) {
        self.stats.fallback_acquisitions += 1;
        self.trace.record(TraceEvent::Fallback {
            at: self.clock,
            core,
        });
        for other in 0..self.cores.len() {
            if other != core && self.cores[other].in_tx() {
                self.do_abort(other, AbortCause::FallbackLock);
            }
        }
        let c = &mut self.cores[core];
        c.mode = ExecMode::Fallback;
        let epoch = c.epoch;
        self.events
            .push(self.clock + 1, Event::CoreStep { core, epoch });
    }

    /// Handles a `RetryTx` event: resume whatever the core is waiting for.
    /// Duplicate wakeups (e.g. several lock releases while parked) are
    /// ignored via the `awaiting_retry` latch.
    pub(crate) fn retry_tx(&mut self, core: usize) {
        if !self.cores[core].awaiting_retry {
            return;
        }
        match self.cores[core].waiting {
            WaitReason::LockToAcquire => {
                if self.lock.try_acquire(core) {
                    let c = &mut self.cores[core];
                    c.waiting = WaitReason::None;
                    c.awaiting_retry = false;
                    self.enter_fallback(core);
                }
                // else: keep waiting; the next release wakes us again.
            }
            WaitReason::PowerToken => {
                if self.token.try_acquire(core) {
                    let c = &mut self.cores[core];
                    c.waiting = WaitReason::None;
                    c.is_power = true;
                    self.stats.power_grants += 1;
                    self.stats.fallback_acquisitions += 1;
                    self.start_speculative(core);
                }
            }
            WaitReason::LockToStart | WaitReason::None => {
                if !self.policy.system.uses_power_token() && self.lock.is_held() {
                    self.cores[core].waiting = WaitReason::LockToStart;
                } else {
                    self.cores[core].waiting = WaitReason::None;
                    self.start_speculative(core);
                }
            }
        }
    }

    fn start_speculative(&mut self, core: usize) {
        self.cores[core].awaiting_retry = false;
        self.begin_attempt(core);
        let epoch = self.cores[core].epoch;
        self.events
            .push(self.clock + 1, Event::CoreStep { core, epoch });
    }

    /// Re-issues a nacked demand request.
    pub(crate) fn mem_retry(&mut self, core: usize) {
        if self.cores[core].pending_mem.is_some() {
            self.issue_pending_request(core, 0);
        }
    }

    /// Wakes cores parked on the fallback lock (acquirers first).
    pub(crate) fn wake_lock_waiters(&mut self) {
        let mut delay = 1;
        for core in 0..self.cores.len() {
            if self.cores[core].waiting == WaitReason::LockToAcquire {
                let epoch = self.cores[core].epoch;
                self.events
                    .push(self.clock + delay, Event::RetryTx { core, epoch });
                delay += 1;
            }
        }
        for core in 0..self.cores.len() {
            if self.cores[core].waiting == WaitReason::LockToStart {
                let epoch = self.cores[core].epoch;
                self.events
                    .push(self.clock + delay, Event::RetryTx { core, epoch });
                delay += 1;
            }
        }
    }

    /// Wakes cores parked on the power token.
    pub(crate) fn wake_power_waiter(&mut self) {
        let mut delay = 1;
        for core in 0..self.cores.len() {
            if self.cores[core].waiting == WaitReason::PowerToken {
                let epoch = self.cores[core].epoch;
                self.events
                    .push(self.clock + delay, Event::RetryTx { core, epoch });
                delay += 1;
            }
        }
    }

    /// Inserts a line into a core's L1, handling evictions: dirty
    /// non-speculative victims write back; speculative victims abort the
    /// transaction (capacity). Returns `false` if the insertion aborted the
    /// transaction.
    pub(crate) fn l1_insert(
        &mut self,
        core: usize,
        line: LineAddr,
        state: CoherenceState,
        data: chats_mem::Line,
    ) -> bool {
        let outcome = self.cores[core].l1.insert(line, state, data);
        if let EvictOutcome::Evicted(victim) = outcome {
            if victim.sm || victim.spec_received {
                // A write-set or spec-received block left the cache: the
                // transaction cannot survive (§III-A).
                self.do_abort(core, AbortCause::Capacity);
                return false;
            }
            if victim.state == CoherenceState::Modified {
                self.dir.store.write_line(victim.addr, victim.data);
                self.send_to_dir(core, MsgClass::Data, DirMsg::WbTiming, 0);
            }
        }
        true
    }
}
