#![warn(missing_docs)]

//! The full CHATS timing machine.
//!
//! Wires every substrate into one simulated multicore:
//!
//! * TxVM cores ([`chats_tvm`]) execute workload bytecode,
//! * private L1 caches with HTM support bits ([`chats_mem`]),
//! * a blocking full-map MESI directory with an inclusive backing store,
//! * a crossbar interconnect with flit accounting ([`chats_noc`]),
//! * the CHATS conflict-management logic and its five comparison systems
//!   ([`chats_core`]).
//!
//! The machine is a deterministic discrete-event simulator: given the same
//! configuration, programs and seed, two runs produce identical statistics.
//!
//! # Example
//!
//! ```
//! use chats_machine::{Machine, Tuning};
//! use chats_core::{HtmSystem, PolicyConfig};
//! use chats_sim::SystemConfig;
//! use chats_tvm::{ProgramBuilder, Reg, Vm};
//!
//! // Two threads transactionally increment the same counter 10 times each.
//! let mut b = ProgramBuilder::new();
//! let (iters, one, addr, v) = (Reg(0), Reg(1), Reg(2), Reg(3));
//! b.imm(iters, 10).imm(one, 1).imm(addr, 0);
//! let top = b.label();
//! b.bind(top);
//! b.tx_begin();
//! b.load(v, addr);
//! b.add(v, v, one);
//! b.store(addr, v);
//! b.tx_end();
//! b.sub(iters, iters, one);
//! b.bne(iters, one, top); // loops while iters != 1 => 10 iterations... (9)
//! b.halt();
//! let prog = b.build();
//!
//! let mut m = Machine::new(
//!     SystemConfig::small_test(),
//!     PolicyConfig::for_system(HtmSystem::Chats),
//!     Tuning::default(),
//!     7,
//! );
//! m.load_thread(0, Vm::new(prog.clone(), 1));
//! m.load_thread(1, Vm::new(prog, 2));
//! let stats = m.run(1_000_000).unwrap();
//! assert!(stats.commits >= 2);
//! assert_eq!(m.inspect_word(chats_mem::Addr(0)), 18); // 2 threads × 9 increments
//! ```

mod commit;
mod conflict;
mod core_state;
mod dir;
mod exec;
mod faults;
mod machine;
mod msg;
mod oracle;
mod protocol;
mod trace;
mod validate;

pub use commit::{
    build_fingerprint, hash_bytes, EpochCommitment, StateCommitment, DEFAULT_COMMIT_INTERVAL,
};
pub use core_state::ExecMode;
pub use faults::{CoreSnapshot, FailureReport};
pub use machine::{DecisionHook, Machine, RunProgress, SimError, Tuning, Violation};
pub use trace::{NullSink, RingSink, TraceEvent, TraceSink};

// Re-exported so downstream crates (runner, checker, observability) can
// speak fault plans without depending on `chats-faults` directly.
pub use chats_faults::{FaultKind, FaultPlan};
