//! Protocol messages and simulation events.

use chats_core::{Pic, Timestamp};
use chats_mem::{Line, LineAddr};

/// A coherence request as it travels to the directory. Carries the HTM
/// metadata the paper piggybacks on coherence traffic: the requester's PiC,
/// power status, and (for LEVC) its idealized timestamp and consumed flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Requesting core.
    pub core: usize,
    /// Line requested.
    pub line: LineAddr,
    /// `true` for exclusive (GetX), `false` for shared (GetS).
    pub getx: bool,
    /// Requester's PiC at issue time (may be stale on arrival — that race
    /// is part of the design, §IV-C).
    pub pic: Pic,
    /// Requester holds the power token.
    pub power: bool,
    /// Requester is not executing a transaction (fallback or plain code):
    /// conflicts always resolve requester-wins.
    pub non_tx: bool,
    /// LEVC idealized timestamp (set only under LEVC-BE-Idealized).
    pub levc_ts: Option<Timestamp>,
    /// LEVC: requester has consumed speculative data (chain-length check).
    pub levc_consumed: bool,
    /// Requester's transaction epoch, echoed in responses so stale replies
    /// can be discarded after an abort.
    pub epoch: u64,
}

/// Messages delivered to a core's L1 controller.
#[derive(Debug, Clone)]
pub enum CoreMsg {
    /// A standard coherence response with data and permissions.
    Data {
        /// Line serviced.
        line: LineAddr,
        /// Committed (or owner-current) data.
        data: Line,
        /// Exclusive ownership granted.
        excl: bool,
        /// Echo of the request epoch.
        epoch: u64,
    },
    /// A speculative response: a value hint with no permissions (§IV-A).
    SpecResp {
        /// Line hinted.
        line: LineAddr,
        /// The producer's current speculative value.
        data: Line,
        /// The producer's PiC after the forwarding; `None` when the
        /// producer is a power transaction (PCHATS), a naive forwarder or
        /// a LEVC forwarder (no PiC in those systems).
        pic: Option<Pic>,
        /// Echo of the request epoch.
        epoch: u64,
    },
    /// Negative acknowledgement: retry later, nothing changed.
    Nack {
        /// Line nacked.
        line: LineAddr,
        /// Echo of the request epoch.
        epoch: u64,
    },
    /// Directory-forwarded request probing this core as owner.
    Probe {
        /// The original request.
        req: Request,
    },
    /// Invalidation of a shared copy (on someone's GetX).
    Inv {
        /// The original request (for conflict policy at the sharer).
        req: Request,
    },
}

/// How an owner probe concluded, reported back to the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// Owner downgraded to Shared and sent data to the requester.
    Shared {
        /// The (former exclusive) owner that keeps a shared copy.
        owner: usize,
    },
    /// Owner invalidated its copy and transferred ownership to the
    /// requester.
    Transferred,
    /// Owner had no copy (silent eviction) or aborted: the directory must
    /// service the request from the backing store.
    NotServiced,
    /// The request was answered with a `SpecResp` or `Nack` directly by the
    /// owner; coherence state and ownership are unchanged (§IV-A).
    Canceled,
}

/// Messages delivered to the directory.
#[derive(Debug, Clone)]
pub enum DirMsg {
    /// A new coherence request.
    Request(Request),
    /// Conclusion of an owner probe.
    ProbeDone {
        /// The probed request (identifies the blocked line + requester).
        req: Request,
        /// What the owner did.
        outcome: ProbeOutcome,
    },
    /// A sharer acknowledged (or refused) an invalidation.
    InvAck {
        /// The request that triggered the invalidation.
        req: Request,
        /// Sharer acknowledging.
        core: usize,
        /// `true` when a power transaction refused to invalidate (the
        /// requester will be nacked).
        refused: bool,
    },
    /// Timing/flit-accounting-only writeback notification; the store value
    /// was already updated synchronously (see DESIGN.md §6).
    WbTiming,
}

/// All simulation events.
#[derive(Debug, Clone)]
pub enum Event {
    /// Resume executing a core's VM.
    CoreStep {
        /// Core to step.
        core: usize,
        /// Epoch guard: stale events are dropped.
        epoch: u64,
    },
    /// Begin a new transaction attempt after backoff / wakeup.
    RetryTx {
        /// Core retrying.
        core: usize,
        /// Epoch guard.
        epoch: u64,
    },
    /// Re-issue a nacked or stalled demand request.
    MemRetry {
        /// Core retrying its memory operation.
        core: usize,
        /// Epoch guard.
        epoch: u64,
    },
    /// Periodic validation timer fired.
    ValidationTick {
        /// Core whose VSB should be probed.
        core: usize,
        /// Epoch guard.
        epoch: u64,
    },
    /// A deferred commit (schedule exploration's `CommitRelease` decision)
    /// is due: commit now if the transaction is still commit-ready.
    CommitRelease {
        /// Core whose commit was deferred.
        core: usize,
        /// Epoch guard.
        epoch: u64,
    },
    /// A message arrived at the directory.
    DirRecv(DirMsg),
    /// A message arrived at a core.
    CoreRecv {
        /// Destination core.
        core: usize,
        /// The message.
        msg: CoreMsg,
    },
}
