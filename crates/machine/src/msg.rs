//! Protocol messages and simulation events.

use chats_core::{Pic, Timestamp};
use chats_mem::{Line, LineAddr};
use chats_snap::{Snap, SnapError, SnapReader, SnapWriter};

/// A coherence request as it travels to the directory. Carries the HTM
/// metadata the paper piggybacks on coherence traffic: the requester's PiC,
/// power status, and (for LEVC) its idealized timestamp and consumed flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Requesting core.
    pub core: usize,
    /// Line requested.
    pub line: LineAddr,
    /// `true` for exclusive (GetX), `false` for shared (GetS).
    pub getx: bool,
    /// Requester's PiC at issue time (may be stale on arrival — that race
    /// is part of the design, §IV-C).
    pub pic: Pic,
    /// Requester holds the power token.
    pub power: bool,
    /// Requester is not executing a transaction (fallback or plain code):
    /// conflicts always resolve requester-wins.
    pub non_tx: bool,
    /// LEVC idealized timestamp (set only under LEVC-BE-Idealized).
    pub levc_ts: Option<Timestamp>,
    /// LEVC: requester has consumed speculative data (chain-length check).
    pub levc_consumed: bool,
    /// Requester's transaction epoch, echoed in responses so stale replies
    /// can be discarded after an abort.
    pub epoch: u64,
}

/// Messages delivered to a core's L1 controller.
#[derive(Debug, Clone)]
pub enum CoreMsg {
    /// A standard coherence response with data and permissions.
    Data {
        /// Line serviced.
        line: LineAddr,
        /// Committed (or owner-current) data.
        data: Line,
        /// Exclusive ownership granted.
        excl: bool,
        /// Echo of the request epoch.
        epoch: u64,
    },
    /// A speculative response: a value hint with no permissions (§IV-A).
    SpecResp {
        /// Line hinted.
        line: LineAddr,
        /// The producer's current speculative value.
        data: Line,
        /// The producer's PiC after the forwarding; `None` when the
        /// producer is a power transaction (PCHATS), a naive forwarder or
        /// a LEVC forwarder (no PiC in those systems).
        pic: Option<Pic>,
        /// Echo of the request epoch.
        epoch: u64,
    },
    /// Negative acknowledgement: retry later, nothing changed.
    Nack {
        /// Line nacked.
        line: LineAddr,
        /// Echo of the request epoch.
        epoch: u64,
    },
    /// Directory-forwarded request probing this core as owner.
    Probe {
        /// The original request.
        req: Request,
    },
    /// Invalidation of a shared copy (on someone's GetX).
    Inv {
        /// The original request (for conflict policy at the sharer).
        req: Request,
    },
}

/// How an owner probe concluded, reported back to the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// Owner downgraded to Shared and sent data to the requester.
    Shared {
        /// The (former exclusive) owner that keeps a shared copy.
        owner: usize,
    },
    /// Owner invalidated its copy and transferred ownership to the
    /// requester.
    Transferred,
    /// Owner had no copy (silent eviction) or aborted: the directory must
    /// service the request from the backing store.
    NotServiced,
    /// The request was answered with a `SpecResp` or `Nack` directly by the
    /// owner; coherence state and ownership are unchanged (§IV-A).
    Canceled,
}

/// Messages delivered to the directory.
#[derive(Debug, Clone)]
pub enum DirMsg {
    /// A new coherence request.
    Request(Request),
    /// Conclusion of an owner probe.
    ProbeDone {
        /// The probed request (identifies the blocked line + requester).
        req: Request,
        /// What the owner did.
        outcome: ProbeOutcome,
    },
    /// A sharer acknowledged (or refused) an invalidation.
    InvAck {
        /// The request that triggered the invalidation.
        req: Request,
        /// Sharer acknowledging.
        core: usize,
        /// `true` when a power transaction refused to invalidate (the
        /// requester will be nacked).
        refused: bool,
    },
    /// Timing/flit-accounting-only writeback notification; the store value
    /// was already updated synchronously (see DESIGN.md §6).
    WbTiming,
}

/// All simulation events.
#[derive(Debug, Clone)]
pub enum Event {
    /// Resume executing a core's VM.
    CoreStep {
        /// Core to step.
        core: usize,
        /// Epoch guard: stale events are dropped.
        epoch: u64,
    },
    /// Begin a new transaction attempt after backoff / wakeup.
    RetryTx {
        /// Core retrying.
        core: usize,
        /// Epoch guard.
        epoch: u64,
    },
    /// Re-issue a nacked or stalled demand request.
    MemRetry {
        /// Core retrying its memory operation.
        core: usize,
        /// Epoch guard.
        epoch: u64,
    },
    /// Periodic validation timer fired.
    ValidationTick {
        /// Core whose VSB should be probed.
        core: usize,
        /// Epoch guard.
        epoch: u64,
    },
    /// A deferred commit (schedule exploration's `CommitRelease` decision)
    /// is due: commit now if the transaction is still commit-ready.
    CommitRelease {
        /// Core whose commit was deferred.
        core: usize,
        /// Epoch guard.
        epoch: u64,
    },
    /// A message arrived at the directory.
    DirRecv(DirMsg),
    /// A message arrived at a core.
    CoreRecv {
        /// Destination core.
        core: usize,
        /// The message.
        msg: CoreMsg,
    },
}

// ---- canonical encodings (state commitments and checkpoints) ----------
//
// Every in-flight message and queued event is part of the machine state a
// commitment must cover. Enum variants are tagged with small fixed bytes;
// tags are stable across builds (append-only).

impl Snap for Request {
    fn save(&self, w: &mut SnapWriter) {
        self.core.save(w);
        self.line.save(w);
        self.getx.save(w);
        self.pic.save(w);
        self.power.save(w);
        self.non_tx.save(w);
        self.levc_ts.save(w);
        self.levc_consumed.save(w);
        self.epoch.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Request {
            core: Snap::load(r)?,
            line: Snap::load(r)?,
            getx: Snap::load(r)?,
            pic: Snap::load(r)?,
            power: Snap::load(r)?,
            non_tx: Snap::load(r)?,
            levc_ts: Snap::load(r)?,
            levc_consumed: Snap::load(r)?,
            epoch: Snap::load(r)?,
        })
    }
}

impl Snap for CoreMsg {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            CoreMsg::Data {
                line,
                data,
                excl,
                epoch,
            } => {
                w.u8(0);
                line.save(w);
                data.save(w);
                excl.save(w);
                epoch.save(w);
            }
            CoreMsg::SpecResp {
                line,
                data,
                pic,
                epoch,
            } => {
                w.u8(1);
                line.save(w);
                data.save(w);
                pic.save(w);
                epoch.save(w);
            }
            CoreMsg::Nack { line, epoch } => {
                w.u8(2);
                line.save(w);
                epoch.save(w);
            }
            CoreMsg::Probe { req } => {
                w.u8(3);
                req.save(w);
            }
            CoreMsg::Inv { req } => {
                w.u8(4);
                req.save(w);
            }
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => CoreMsg::Data {
                line: Snap::load(r)?,
                data: Snap::load(r)?,
                excl: Snap::load(r)?,
                epoch: Snap::load(r)?,
            },
            1 => CoreMsg::SpecResp {
                line: Snap::load(r)?,
                data: Snap::load(r)?,
                pic: Snap::load(r)?,
                epoch: Snap::load(r)?,
            },
            2 => CoreMsg::Nack {
                line: Snap::load(r)?,
                epoch: Snap::load(r)?,
            },
            3 => CoreMsg::Probe {
                req: Snap::load(r)?,
            },
            4 => CoreMsg::Inv {
                req: Snap::load(r)?,
            },
            t => return Err(r.err(format!("CoreMsg tag must be 0..=4, got {t}"))),
        })
    }
}

impl Snap for ProbeOutcome {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            ProbeOutcome::Shared { owner } => {
                w.u8(0);
                owner.save(w);
            }
            ProbeOutcome::Transferred => w.u8(1),
            ProbeOutcome::NotServiced => w.u8(2),
            ProbeOutcome::Canceled => w.u8(3),
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => ProbeOutcome::Shared {
                owner: Snap::load(r)?,
            },
            1 => ProbeOutcome::Transferred,
            2 => ProbeOutcome::NotServiced,
            3 => ProbeOutcome::Canceled,
            t => return Err(r.err(format!("ProbeOutcome tag must be 0..=3, got {t}"))),
        })
    }
}

impl Snap for DirMsg {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            DirMsg::Request(req) => {
                w.u8(0);
                req.save(w);
            }
            DirMsg::ProbeDone { req, outcome } => {
                w.u8(1);
                req.save(w);
                outcome.save(w);
            }
            DirMsg::InvAck { req, core, refused } => {
                w.u8(2);
                req.save(w);
                core.save(w);
                refused.save(w);
            }
            DirMsg::WbTiming => w.u8(3),
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => DirMsg::Request(Snap::load(r)?),
            1 => DirMsg::ProbeDone {
                req: Snap::load(r)?,
                outcome: Snap::load(r)?,
            },
            2 => DirMsg::InvAck {
                req: Snap::load(r)?,
                core: Snap::load(r)?,
                refused: Snap::load(r)?,
            },
            3 => DirMsg::WbTiming,
            t => return Err(r.err(format!("DirMsg tag must be 0..=3, got {t}"))),
        })
    }
}

impl Snap for Event {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            Event::CoreStep { core, epoch } => {
                w.u8(0);
                core.save(w);
                epoch.save(w);
            }
            Event::RetryTx { core, epoch } => {
                w.u8(1);
                core.save(w);
                epoch.save(w);
            }
            Event::MemRetry { core, epoch } => {
                w.u8(2);
                core.save(w);
                epoch.save(w);
            }
            Event::ValidationTick { core, epoch } => {
                w.u8(3);
                core.save(w);
                epoch.save(w);
            }
            Event::CommitRelease { core, epoch } => {
                w.u8(4);
                core.save(w);
                epoch.save(w);
            }
            Event::DirRecv(msg) => {
                w.u8(5);
                msg.save(w);
            }
            Event::CoreRecv { core, msg } => {
                w.u8(6);
                core.save(w);
                msg.save(w);
            }
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => Event::CoreStep {
                core: Snap::load(r)?,
                epoch: Snap::load(r)?,
            },
            1 => Event::RetryTx {
                core: Snap::load(r)?,
                epoch: Snap::load(r)?,
            },
            2 => Event::MemRetry {
                core: Snap::load(r)?,
                epoch: Snap::load(r)?,
            },
            3 => Event::ValidationTick {
                core: Snap::load(r)?,
                epoch: Snap::load(r)?,
            },
            4 => Event::CommitRelease {
                core: Snap::load(r)?,
                epoch: Snap::load(r)?,
            },
            5 => Event::DirRecv(Snap::load(r)?),
            6 => Event::CoreRecv {
                core: Snap::load(r)?,
                msg: Snap::load(r)?,
            },
            t => return Err(r.err(format!("Event tag must be 0..=6, got {t}"))),
        })
    }
}
