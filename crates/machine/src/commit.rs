//! State commitments, epoch chains and checkpoint/restore.
//!
//! The machine's complete deterministic state — per-core state, L1 caches,
//! the directory and backing store, policy state (VSB/PiC/LEVC/retry),
//! in-flight interconnect messages and the pending event queue — folds
//! into one flat byte stream via [`chats_snap`], in a canonical order that
//! never leaks hash-map iteration order (DESIGN §16). That stream serves
//! two purposes:
//!
//! * **Commitments** — [`Machine::state_commitment`] hashes it with the
//!   deterministic [`chats_core::fasthash`] hasher. With
//!   [`Machine::set_commit_interval`] armed, the run loop records an
//!   [`EpochCommitment`] at every epoch boundary, producing a chain two
//!   runs can compare epoch-by-epoch (`chats-dissect`).
//! * **Checkpoints** — [`Machine::checkpoint`] wraps the stream with a
//!   header (magic, version, configuration guard, the commitment chain so
//!   far, and a self-check hash); [`Machine::restore`] resumes an
//!   identically-constructed machine from it, bit-for-bit.
//!
//! The commitment distinguishes **architectural** state (everything the
//! simulated hardware holds) from **environment** state (the fault
//! injector's RNG and the watchdog's bookkeeping): the `arch` hash covers
//! only the former, so a clean run and a fault-plan run can be dissected
//! against each other — their arch hashes first diverge at the epoch of
//! the first *actually injected* fault, not at the first consumed RNG
//! draw. Trace sinks, schedule hooks and the decision log are outside both
//! hashes (commitments are invariant to observability).

use crate::machine::{Machine, Tuning, Violation};
use crate::msg::Event;
use chats_sim::{Cycle, EventQueue};
use chats_snap::{Snap, SnapError, SnapReader, SnapWriter};
use std::hash::Hasher;

/// Checkpoint magic ("CHATSCKP" little-endian-ish constant).
const MAGIC: u64 = 0x5043_4B43_5441_4843;
/// Checkpoint format version; bump on any encoding change.
const VERSION: u32 = 1;

/// Names of the environment (non-architectural) sections; they are written
/// last, so the arch hash is the hash of the stream prefix before them.
const ENV_SECTIONS: [&str; 2] = ["env.faults", "env.watchdog"];

/// The default epoch-commitment interval in cycles, shared by the
/// dissection tools and the overhead bench. Each boundary hashes the
/// *complete* machine state (a walk proportional to state size, not to
/// the events in the epoch), so the interval is what amortizes that
/// fixed cost: 64 Ki cycles keeps the measured throughput loss under 5%
/// on the 16-core paper config (`chats-bench commit-overhead`), while an
/// epoch stays small enough that divergence dissection replays at most a
/// few tens of thousands of events to pin the first divergent one.
pub const DEFAULT_COMMIT_INTERVAL: u64 = 65_536;

/// The full/arch commitment pair of one machine state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateCommitment {
    /// Hash over the complete state stream (arch + environment).
    pub full: u64,
    /// Hash over the architectural prefix only (excludes fault-injector
    /// and watchdog state). Compare *this* across runs under different
    /// fault plans.
    pub arch: u64,
}

/// One entry of a run's commitment chain: the machine state at an epoch
/// boundary, identified by the boundary cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochCommitment {
    /// The boundary cycle `B`: the hashed state reflects every event with
    /// time `< B` and none at or after it.
    pub boundary: u64,
    /// Full state hash at the boundary.
    pub full: u64,
    /// Architectural state hash at the boundary.
    pub arch: u64,
}

impl Snap for EpochCommitment {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.boundary);
        w.u64(self.full);
        w.u64(self.arch);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(EpochCommitment {
            boundary: r.u64()?,
            full: r.u64()?,
            arch: r.u64()?,
        })
    }
}

/// Epoch-commitment bookkeeping carried by the machine. Disarmed (interval
/// `None`) by default: the run loop then costs one branch per event.
#[derive(Debug, Clone, Default)]
pub(crate) struct CommitTracker {
    /// Epoch length in cycles; `None` disables boundary hashing.
    pub(crate) interval: Option<u64>,
    /// Next boundary to record.
    pub(crate) next_at: u64,
    /// Commitments recorded so far, in boundary order.
    pub(crate) chain: Vec<EpochCommitment>,
}

impl Snap for CommitTracker {
    fn save(&self, w: &mut SnapWriter) {
        self.interval.save(w);
        w.u64(self.next_at);
        self.chain.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(CommitTracker {
            interval: Snap::load(r)?,
            next_at: r.u64()?,
            chain: Snap::load(r)?,
        })
    }
}

impl Snap for Violation {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            Violation::AtomicityAtCommit {
                core,
                addr,
                observed,
                committed,
                at,
            } => {
                w.u8(0);
                core.save(w);
                w.u64(*addr);
                w.u64(*observed);
                w.u64(*committed);
                w.u64(*at);
            }
            Violation::InconsistentRead {
                core,
                addr,
                observed,
                committed,
                at,
            } => {
                w.u8(1);
                core.save(w);
                w.u64(*addr);
                w.u64(*observed);
                w.u64(*committed);
                w.u64(*at);
            }
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let tag = r.u8()?;
        let core = Snap::load(r)?;
        let addr = r.u64()?;
        let observed = r.u64()?;
        let committed = r.u64()?;
        let at = r.u64()?;
        match tag {
            0 => Ok(Violation::AtomicityAtCommit {
                core,
                addr,
                observed,
                committed,
                at,
            }),
            1 => Ok(Violation::InconsistentRead {
                core,
                addr,
                observed,
                committed,
                at,
            }),
            t => Err(r.err(format!("Violation tag must be 0 or 1, got {t}"))),
        }
    }
}

/// Hashes a byte slice with the simulator's deterministic hasher.
#[must_use]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = chats_core::fasthash::FxHasher::default();
    h.write(bytes);
    h.finish()
}

impl Machine {
    /// Arms epoch commitments: the run loop records an [`EpochCommitment`]
    /// at every multiple of `interval` cycles, starting with the initial
    /// state at boundary 0. Call before [`Machine::run`].
    ///
    /// # Panics
    ///
    /// Panics if `interval` is 0.
    pub fn set_commit_interval(&mut self, interval: u64) {
        assert!(interval > 0, "an epoch needs a nonzero length");
        self.commit.interval = Some(interval);
    }

    /// The epoch length armed by [`Machine::set_commit_interval`], if any.
    #[must_use]
    pub fn commit_interval(&self) -> Option<u64> {
        self.commit.interval
    }

    /// The commitment chain recorded so far, in boundary order (empty
    /// unless [`Machine::set_commit_interval`] armed epoch hashing).
    #[must_use]
    pub fn commitment_chain(&self) -> &[EpochCommitment] {
        &self.commit.chain
    }

    /// Records every boundary at or before `next_time` (the timestamp of
    /// the next event about to be dispatched): the current state reflects
    /// exactly the events *before* each such boundary. Called from the run
    /// loop before the pause check, so a pause at boundary `B` always has
    /// `B`'s commitment on the chain.
    pub(crate) fn note_commit_boundaries(&mut self, next_time: u64) {
        let Some(interval) = self.commit.interval else {
            return;
        };
        while self.commit.next_at <= next_time {
            let boundary = self.commit.next_at;
            let c = self.state_commitment();
            self.commit.chain.push(EpochCommitment {
                boundary,
                full: c.full,
                arch: c.arch,
            });
            self.commit.next_at = boundary + interval;
        }
    }

    /// Serializes the complete deterministic machine state into `w`, in
    /// named sections. Architectural sections come first, the environment
    /// sections ([`ENV_SECTIONS`]) last, so the arch hash is a prefix
    /// hash. Trace sinks, schedule hooks and the decision log are not
    /// state — they observe the run without influencing it.
    ///
    /// **Every new mutable `Machine` field must join this stream** (or be
    /// explicitly argued out as pure observability) — see the DESIGN §16
    /// checklist.
    pub(crate) fn write_state(&self, w: &mut SnapWriter) {
        w.mark("clock");
        self.clock.save(w);
        self.started.save(w);
        self.halted.save(w);
        w.u64(self.seed);

        w.mark("cores");
        w.u64(self.cores.len() as u64);
        for c in &self.cores {
            c.save_state(w);
        }

        w.mark("dir");
        self.dir.save_state(w);

        w.mark("noc");
        self.xbar.save_state(w);

        w.mark("queue");
        // Exact delivery order (time, then FIFO within a tie), independent
        // of the timing wheel's internal layout — a restored queue holds
        // the same events in a different arrangement yet hashes the same.
        let ordered = self.events.ordered();
        w.u64(ordered.len() as u64);
        for (t, ev) in ordered {
            t.save(w);
            ev.save(w);
        }

        w.mark("sched");
        self.lock.save(w);
        self.token.save(w);
        self.ts_source.save(w);
        self.rng.save(w);

        w.mark("stats");
        self.stats.save(w);

        w.mark("diag");
        self.violations.save(w);
        self.watch_log.save(w);

        w.mark("env.faults");
        match &self.faults {
            None => w.u8(0),
            Some(f) => {
                w.u8(1);
                f.save_state(w);
            }
        }

        w.mark("env.watchdog");
        self.watchdog.save(w);
    }

    /// Restores state captured by [`Machine::write_state`] over this
    /// machine. The machine must have been constructed identically
    /// (configuration, threads loaded, fault plan installed) — callers go
    /// through [`Machine::restore`], which verifies that first.
    pub(crate) fn read_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.clock = Snap::load(r)?;
        self.started = Snap::load(r)?;
        self.halted = Snap::load(r)?;
        let seed = r.u64()?;
        if seed != self.seed {
            return Err(r.err(format!(
                "snapshot was taken under seed {seed}, machine runs {}",
                self.seed
            )));
        }
        let n = r.len_prefix(1)?;
        if n != self.cores.len() {
            return Err(r.err(format!(
                "snapshot has {n} cores, machine has {}",
                self.cores.len()
            )));
        }
        for c in &mut self.cores {
            c.restore_state(r)?;
        }
        self.dir.restore_state(r)?;
        self.xbar.restore_state(r)?;
        let n = r.len_prefix(9)?;
        let mut events = EventQueue::new();
        for _ in 0..n {
            let t: Cycle = Snap::load(r)?;
            let ev: Event = Snap::load(r)?;
            events.push(t, ev);
        }
        self.events = events;
        self.lock = Snap::load(r)?;
        self.token = Snap::load(r)?;
        self.ts_source = Snap::load(r)?;
        self.rng = Snap::load(r)?;
        self.stats = Snap::load(r)?;
        self.violations = Snap::load(r)?;
        self.watch_log = Snap::load(r)?;
        match (r.u8()?, self.faults.as_mut()) {
            (0, None) => {}
            (1, Some(f)) => f.restore_state(r)?,
            (0, Some(_)) => {
                return Err(r.err(
                    "snapshot has no fault state but a plan is installed here \
                     (restore on a machine constructed with the original plan)",
                ));
            }
            (1, None) => {
                return Err(r.err(
                    "snapshot carries fault state but no plan is installed here \
                     (restore on a machine constructed with the original plan)",
                ));
            }
            (t, _) => return Err(r.err(format!("fault presence byte must be 0 or 1, got {t}"))),
        }
        self.watchdog = Snap::load(r)?;
        Ok(())
    }

    /// The commitment of the machine's current state. Cost is one linear
    /// serialization of live state — intended for epoch boundaries and
    /// post-run fingerprints, not per-event use.
    #[must_use]
    pub fn state_commitment(&self) -> StateCommitment {
        let mut w = SnapWriter::new();
        self.write_state(&mut w);
        let bytes = w.bytes();
        let arch_end = w
            .sections()
            .iter()
            .find(|(name, _)| ENV_SECTIONS.contains(name))
            .map_or(bytes.len(), |(_, range)| range.start);
        StateCommitment {
            full: hash_bytes(bytes),
            arch: hash_bytes(&bytes[..arch_end]),
        }
    }

    /// Per-section subhashes of the current state, in stream order — the
    /// dissection tool's first localization step: two runs with unequal
    /// commitments differ in exactly the sections whose subhashes differ.
    #[must_use]
    pub fn commitment_sections(&self) -> Vec<(&'static str, u64)> {
        let mut w = SnapWriter::new();
        self.write_state(&mut w);
        let bytes = w.bytes();
        w.sections()
            .into_iter()
            .map(|(name, range)| (name, hash_bytes(&bytes[range])))
            .collect()
    }

    /// Hash of the construction parameters (configuration, policy, tuning,
    /// seed): a checkpoint only restores onto a machine with a matching
    /// guard.
    #[must_use]
    pub fn config_guard(&self) -> u64 {
        hash_bytes(
            format!(
                "{:?}|{:?}|{:?}|{}",
                self.cfg, self.policy, self.tuning, self.seed
            )
            .as_bytes(),
        )
    }

    /// Serializes a complete checkpoint: header (magic, version,
    /// configuration guard), the commitment bookkeeping, and the
    /// self-check-hashed state body. Restore with [`Machine::restore`] on
    /// a machine constructed exactly like this one (same config, policy,
    /// tuning, seed, threads, fault plan).
    #[must_use]
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut body = SnapWriter::new();
        self.write_state(&mut body);
        let body = body.into_bytes();
        let mut w = SnapWriter::new();
        w.u64(MAGIC);
        w.u32(VERSION);
        w.u64(self.config_guard());
        self.commit.save(&mut w);
        w.u64(hash_bytes(&body));
        w.bytes_prefixed(&body);
        w.into_bytes()
    }

    /// Restores this machine from a [`Machine::checkpoint`] byte stream,
    /// including the commitment chain recorded up to the checkpoint. After
    /// a successful restore the machine continues exactly where the
    /// checkpointed one paused: the rest of the run — trace, stats,
    /// commitments — is byte-identical to the uninterrupted original.
    ///
    /// # Errors
    ///
    /// Fails on a malformed or truncated stream, a version or
    /// configuration-guard mismatch, or when the restored state does not
    /// re-serialize to the checkpointed bytes (the self-check).
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let mut r = SnapReader::new(bytes);
        let magic = r.u64()?;
        if magic != MAGIC {
            return Err(r.err(format!("not a checkpoint (magic {magic:#018x})")));
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(r.err(format!(
                "checkpoint format v{version}, this build reads v{VERSION}"
            )));
        }
        let guard = r.u64()?;
        if guard != self.config_guard() {
            return Err(r.err(format!(
                "checkpoint was taken under a different machine configuration \
                 (guard {guard:016x}, this machine {:016x})",
                self.config_guard()
            )));
        }
        let commit: CommitTracker = Snap::load(&mut r)?;
        let body_hash = r.u64()?;
        let body = r.bytes_prefixed()?;
        if !r.is_empty() {
            return Err(r.err(format!("{} trailing bytes after checkpoint", r.remaining())));
        }
        if hash_bytes(body) != body_hash {
            return Err(r.err("checkpoint body does not match its recorded hash (corrupt file?)"));
        }
        let mut br = SnapReader::new(body);
        self.read_state(&mut br)?;
        if !br.is_empty() {
            return Err(SnapError {
                at: br.position(),
                what: format!("{} trailing bytes after machine state", br.remaining()),
            });
        }
        self.commit = commit;
        // Self-check: the restored state must re-serialize to the very
        // bytes just read — anything less means a field was dropped on one
        // side and the resumed run would silently diverge.
        let restored = self.state_commitment();
        if restored.full != body_hash {
            return Err(SnapError {
                at: 0,
                what: format!(
                    "restored state re-hashes to {:016x}, checkpoint body was {body_hash:016x} \
                     (state coverage bug)",
                    restored.full
                ),
            });
        }
        Ok(())
    }
}

/// A commitment fingerprint of this build of the simulator: runs the crate
/// doc-example workload (two threads incrementing a shared counter) on a
/// small test machine and returns the final full state commitment. Any
/// change to protocol behaviour, state layout or the hash itself moves the
/// fingerprint, so reproducers can refuse to replay against a build whose
/// semantics drifted.
#[must_use]
pub fn build_fingerprint() -> u64 {
    use chats_tvm::{ProgramBuilder, Reg, Vm};
    let mut b = ProgramBuilder::new();
    let (iters, one, addr, v) = (Reg(0), Reg(1), Reg(2), Reg(3));
    b.imm(iters, 10).imm(one, 1).imm(addr, 0);
    let top = b.label();
    b.bind(top);
    b.tx_begin();
    b.load(v, addr);
    b.add(v, v, one);
    b.store(addr, v);
    b.tx_end();
    b.sub(iters, iters, one);
    b.bne(iters, one, top);
    b.halt();
    let prog = b.build();
    let mut m = Machine::new(
        chats_sim::SystemConfig::small_test(),
        chats_core::PolicyConfig::for_system(chats_core::HtmSystem::Chats),
        Tuning::default(),
        7,
    );
    m.load_thread(0, Vm::new(prog.clone(), 1));
    m.load_thread(1, Vm::new(prog, 2));
    m.run(1_000_000)
        .expect("fingerprint workload must complete");
    m.state_commitment().full
}

#[cfg(test)]
mod tests {
    use crate::machine::RunProgress;
    use crate::{Machine, Tuning};
    use chats_core::{HtmSystem, PolicyConfig};
    use chats_sim::SystemConfig;
    use chats_tvm::{ProgramBuilder, Reg, Vm};

    /// Two threads transactionally incrementing a shared counter long
    /// enough to cross several epoch boundaries.
    fn counter_machine(seed: u64) -> Machine {
        let mut b = ProgramBuilder::new();
        let (iters, one, addr, v) = (Reg(0), Reg(1), Reg(2), Reg(3));
        b.imm(iters, 200).imm(one, 1).imm(addr, 0);
        let top = b.label();
        b.bind(top);
        b.tx_begin();
        b.load(v, addr);
        b.add(v, v, one);
        b.store(addr, v);
        b.tx_end();
        b.sub(iters, iters, one);
        b.bne(iters, one, top);
        b.halt();
        let prog = b.build();
        let mut m = Machine::new(
            SystemConfig::small_test(),
            PolicyConfig::for_system(HtmSystem::Chats),
            Tuning::default(),
            seed,
        );
        m.load_thread(0, Vm::new(prog.clone(), 1));
        m.load_thread(1, Vm::new(prog, 2));
        m
    }

    #[test]
    fn commitments_are_deterministic_and_trace_invariant() {
        let mut a = counter_machine(7);
        a.set_commit_interval(256);
        a.enable_trace(1 << 14);
        let stats_a = a.run(1_000_000).unwrap();

        let mut b = counter_machine(7);
        b.set_commit_interval(256);
        // No trace sink at all: the chain must not notice.
        let stats_b = b.run(1_000_000).unwrap();

        assert_eq!(stats_a, stats_b);
        assert!(
            a.commitment_chain().len() > 3,
            "run too short to cross epochs"
        );
        assert_eq!(a.commitment_chain(), b.commitment_chain());
        assert_eq!(a.state_commitment(), b.state_commitment());
        // No fault plan installed: arch and full hashes agree except for
        // the (empty) env sections' encoding, which is identical too.
        let c = a.state_commitment();
        let sections = a.commitment_sections();
        assert!(sections.iter().any(|(n, _)| *n == "queue"));
        assert_ne!(c.full, 0);
    }

    #[test]
    fn different_seeds_produce_different_commitments() {
        let mut a = counter_machine(7);
        let mut b = counter_machine(8);
        a.run(1_000_000).unwrap();
        b.run(1_000_000).unwrap();
        assert_ne!(a.state_commitment().full, b.state_commitment().full);
    }

    #[test]
    fn checkpoint_restore_resumes_bit_identically() {
        // Golden: one uninterrupted run.
        let mut gold = counter_machine(7);
        gold.set_commit_interval(256);
        gold.enable_trace(1 << 14);
        let gold_stats = gold.run(1_000_000).unwrap();
        let gold_trace = gold.trace_events();
        let gold_chain = gold.commitment_chain().to_vec();
        assert_eq!(gold.dropped_events(), 0, "ring too small for the test");

        // Interrupted: pause on an epoch boundary, checkpoint.
        let mut first = counter_machine(7);
        first.set_commit_interval(256);
        first.enable_trace(1 << 14);
        let RunProgress::Paused { at } = first.run_to(1024, 1_000_000).unwrap() else {
            panic!("workload finished before the pause boundary");
        };
        assert_eq!(at, 1024);
        let ckpt = first.checkpoint();
        let prefix_trace = first.trace_events();

        // Resume on a freshly constructed machine.
        let mut resumed = counter_machine(7);
        resumed.enable_trace(1 << 14);
        resumed.restore(&ckpt).unwrap();
        // Paused exactly on a boundary ⇒ the restored state re-hashes to
        // that boundary's chain entry.
        let entry = resumed
            .commitment_chain()
            .iter()
            .find(|e| e.boundary == 1024)
            .copied()
            .expect("boundary 1024 must be on the restored chain");
        assert_eq!(resumed.state_commitment().full, entry.full);

        let resumed_stats = resumed.run(1_000_000).unwrap();
        assert_eq!(resumed_stats, gold_stats);
        assert_eq!(resumed.commitment_chain(), &gold_chain[..]);
        // The pre-pause trace plus the post-restore trace is the golden
        // trace, event for event.
        let mut stitched = prefix_trace;
        stitched.extend(resumed.trace_events());
        assert_eq!(stitched, gold_trace);
        assert_eq!(
            resumed.inspect_word(chats_mem::Addr(0)),
            gold.inspect_word(chats_mem::Addr(0))
        );
    }

    #[test]
    fn restore_rejects_mismatched_construction() {
        let mut a = counter_machine(7);
        let RunProgress::Paused { .. } = a.run_to(512, 1_000_000).unwrap() else {
            panic!("workload finished before the pause boundary");
        };
        let ckpt = a.checkpoint();
        // Different seed ⇒ different configuration guard.
        let mut wrong = counter_machine(8);
        assert!(wrong.restore(&ckpt).is_err());
        // Corrupt body ⇒ hash mismatch.
        let mut bad = ckpt.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xFF;
        let mut m = counter_machine(7);
        assert!(m.restore(&bad).is_err());
        // Truncation ⇒ decode error.
        let mut m = counter_machine(7);
        assert!(m.restore(&ckpt[..ckpt.len() - 3]).is_err());
    }

    #[test]
    fn build_fingerprint_is_stable_within_a_build() {
        assert_eq!(super::build_fingerprint(), super::build_fingerprint());
    }
}
