//! The validation engine (§IV-B): periodic probing of VSB entries,
//! value comparison, cycle checks and commit gating.

use crate::machine::Machine;
use crate::msg::{DirMsg, Event, Request};
use chats_core::{validation_pic_check, AbortCause, HtmSystem, Pic};
use chats_mem::{Line, LineAddr};
use chats_noc::MsgClass;

impl Machine {
    /// Arms the periodic validation timer if the system validates
    /// periodically and the timer is not already pending.
    pub(crate) fn arm_validation(&mut self, core: usize) {
        let interval = self.policy.validation_interval;
        if interval == 0 {
            // LEVC-BE-Idealized: validation happens only at commit.
            return;
        }
        if self.cores[core].val_timer_armed || self.cores[core].vsb.is_empty() {
            return;
        }
        let delay = self.pacing_delay(core, interval);
        let c = &mut self.cores[core];
        c.val_timer_armed = true;
        let epoch = c.epoch;
        self.events
            .push(self.clock + delay, Event::ValidationTick { core, epoch });
    }

    /// The `ValidationPacing` decision: how long until the next validation
    /// action. 0 = the configured `base` (default), 1 = delayed 8×
    /// (validation starved until just before commit), 2 = next cycle
    /// (validation races the forwarding it validates).
    fn pacing_delay(&mut self, core: usize, base: u64) -> u64 {
        if !self.hook_active() {
            return base;
        }
        match self.decide(chats_sim::DecisionKind::ValidationPacing, Some(core), 3) {
            1 => base * 8,
            2 => 1,
            _ => base,
        }
    }

    /// The validation timer fired.
    pub(crate) fn validation_tick(&mut self, core: usize) {
        self.cores[core].val_timer_armed = false;
        if !self.cores[core].in_tx() || self.cores[core].vsb.is_empty() {
            return;
        }
        if self.cores[core].val_req.is_some() {
            // A probe is already in flight; try again next period.
            self.arm_validation(core);
            return;
        }
        self.issue_validation(core);
    }

    /// Starts validating immediately (commit pending).
    pub(crate) fn kick_validation(&mut self, core: usize) {
        if self.cores[core].val_req.is_none() && !self.cores[core].vsb.is_empty() {
            self.issue_validation(core);
        }
    }

    /// Issues an exclusive request for the next VSB entry.
    fn issue_validation(&mut self, core: usize) {
        let line = {
            let c = &mut self.cores[core];
            let entry = c.vsb.next_to_validate().expect("validation on empty VSB");
            let line = entry.addr;
            c.vsb.advance_cursor();
            c.val_req = Some(line);
            line
        };
        self.stats.validation_attempts += 1;
        let c = &self.cores[core];
        let req = Request {
            core,
            line,
            getx: true,
            pic: c.pic.pic,
            power: c.is_power,
            non_tx: false,
            levc_ts: c.levc_ts,
            levc_consumed: c.levc.has_consumed,
            epoch: c.epoch,
        };
        self.send_to_dir(core, MsgClass::Control, DirMsg::Request(req), 0);
    }

    /// A validation probe came back with real data and ownership: compare
    /// against the pristine copy and, on a match, the line is validated.
    pub(crate) fn validation_data(&mut self, core: usize, line: LineAddr, data: Line) {
        if self.watching(line) {
            let msg = format!("validation_data core{core} data={data:?}");
            self.watch_push(msg);
        }
        self.cores[core].val_req = None;
        let pristine = self.cores[core]
            .vsb
            .get(line)
            .expect("validation response for untracked line")
            .data;
        if data != pristine && !self.tuning.debug_skip_validation {
            // The producer overwrote or aborted, or a third writer
            // intervened: the speculation was wrong (§III-A).
            self.do_abort(core, AbortCause::ValidationMismatch);
            return;
        }
        // Validated: we are now the real owner; the pristine copy is
        // discarded and the (possibly locally modified) cache copy is the
        // current version.
        {
            let c = &mut self.cores[core];
            c.vsb.remove(line);
            if let Some(e) = c.l1.lookup_mut(line) {
                e.spec_received = false;
            }
            c.naive.on_successful_validation();
        }
        self.stats.validations_ok += 1;
        self.trace.record(crate::trace::TraceEvent::Validated {
            at: self.clock,
            core,
            line,
        });
        self.after_validation_step(core);
    }

    /// A validation probe was answered speculatively again: the producer is
    /// still running. Check values and PiCs; retry later.
    pub(crate) fn validation_spec(
        &mut self,
        core: usize,
        line: LineAddr,
        data: Line,
        pic: Option<Pic>,
    ) {
        if self.watching(line) {
            let msg = format!("validation_spec core{core} data={data:?}");
            self.watch_push(msg);
        }
        self.cores[core].val_req = None;
        let pristine = self.cores[core]
            .vsb
            .get(line)
            .expect("validation response for untracked line")
            .data;
        if data != pristine && !self.tuning.debug_skip_validation {
            self.do_abort(core, AbortCause::ValidationMismatch);
            return;
        }
        if let Some(p) = pic {
            // §IV-B: a local PiC at or above the responder's means a cycle
            // slipped through a race; abort to break it.
            if validation_pic_check(self.cores[core].pic.pic, p) {
                self.do_abort(core, AbortCause::CycleDetected);
                return;
            }
        }
        if self.policy.system == HtmSystem::NaiveRs
            && self.cores[core].naive.on_unsuccessful_validation()
        {
            self.do_abort(core, AbortCause::ValidationBudgetExhausted);
            return;
        }
        self.after_validation_step(core);
    }

    /// A validation probe was nacked (power owner): retry later.
    pub(crate) fn validation_nack(&mut self, core: usize) {
        self.cores[core].val_req = None;
        self.after_validation_step(core);
    }

    /// Schedules the next validation action after a probe concluded
    /// without aborting.
    fn after_validation_step(&mut self, core: usize) {
        if self.cores[core].vsb.is_empty() {
            // All consumptions validated: drop the Cons bit; the PiC stays
            // until commit — we may still be a producer (§IV-B).
            self.cores[core].pic.cons = false;
            if self.cores[core].commit_pending && self.try_commit(core) {
                let epoch = self.cores[core].epoch;
                self.events
                    .push(self.clock + 1, Event::CoreStep { core, epoch });
            }
            return;
        }
        if self.cores[core].commit_pending {
            // Commit is blocked on the VSB: keep validating continuously.
            let at = self.clock + self.pacing_delay(core, self.tuning.commit_validation_gap);
            let epoch = self.cores[core].epoch;
            self.events.push(at, Event::ValidationTick { core, epoch });
            self.cores[core].val_timer_armed = true;
        } else {
            self.arm_validation(core);
        }
    }
}
