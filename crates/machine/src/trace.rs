//! Protocol event tracing: the event taxonomy and pluggable sinks.
//!
//! The machine emits one [`TraceEvent`] per interesting protocol action —
//! transaction lifecycle, forwardings, validations, fallback episodes,
//! interconnect injections, validation stalls and VSB movements. Where the
//! events go is decided by the installed [`TraceSink`]:
//!
//! * [`RingSink`] — a bounded in-memory ring that keeps the **latest**
//!   events and counts everything it had to drop (what
//!   [`crate::Machine::enable_trace`] installs),
//! * `chats-obs`'s JSONL sink — streams every event to disk,
//! * no sink at all — the default; emission sites check
//!   [`Trace::enabled`] first, so a machine without a sink never even
//!   constructs the events (zero allocations on the hot path).
//!
//! The event stream is ordered by emission: timestamps never decrease, and
//! same-cycle events appear in protocol order. `chats-obs` reconstructs
//! per-core transaction timelines and cycle-accounting breakdowns from it.

use chats_core::{AbortCause, Pic};
use chats_mem::LineAddr;
use chats_sim::Cycle;
use std::fmt;

/// One recorded protocol action.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TraceEvent {
    /// A transaction attempt began.
    TxBegin {
        /// When.
        at: Cycle,
        /// Which core.
        core: usize,
    },
    /// A transaction committed.
    Commit {
        /// When.
        at: Cycle,
        /// Which core.
        core: usize,
    },
    /// A transaction attempt aborted.
    Abort {
        /// When.
        at: Cycle,
        /// Which core.
        core: usize,
        /// Why.
        cause: AbortCause,
    },
    /// A producer answered a conflicting request with a `SpecResp`.
    Forward {
        /// When.
        at: Cycle,
        /// Producer core.
        from: usize,
        /// Consumer core.
        to: usize,
        /// Conflicting line.
        line: LineAddr,
        /// The PiC carried by the `SpecResp` (`None` from power/naive/LEVC
        /// producers).
        pic: Option<Pic>,
    },
    /// A speculatively received line validated successfully.
    Validated {
        /// When.
        at: Cycle,
        /// Consumer core.
        core: usize,
        /// The line that is now genuinely owned.
        line: LineAddr,
    },
    /// A thread acquired the fallback path (lock or forced token).
    Fallback {
        /// When.
        at: Cycle,
        /// Which core.
        core: usize,
    },
    /// The fallback path was released (the non-speculative section ended).
    FallbackRelease {
        /// When.
        at: Cycle,
        /// Which core.
        core: usize,
    },
    /// A message was injected into the interconnect. `arrive` is its
    /// (pre-computed, deterministic) arrival time at `dst`; the queueing
    /// delay beyond pure serialization + link latency is egress
    /// contention.
    NocSend {
        /// Injection time.
        at: Cycle,
        /// Source node (cores `0..n`, then the directory).
        src: usize,
        /// Destination node.
        dst: usize,
        /// Message size in flits.
        flits: u64,
        /// Arrival time at `dst`.
        arrive: Cycle,
    },
    /// A transaction reached `TxEnd` but cannot commit until its VSB
    /// drains: the validation stall begins.
    ValStallBegin {
        /// When.
        at: Cycle,
        /// Which core.
        core: usize,
    },
    /// The validation stall ended (the attempt committed or aborted).
    ValStallEnd {
        /// When.
        at: Cycle,
        /// Which core.
        core: usize,
    },
    /// A speculatively received line entered the VSB.
    VsbInsert {
        /// When.
        at: Cycle,
        /// Consumer core.
        core: usize,
        /// The guarded line.
        line: LineAddr,
        /// Entries held after the insertion.
        occupancy: usize,
    },
    /// A VSB entry was discarded unvalidated (its attempt aborted).
    VsbEvict {
        /// When.
        at: Cycle,
        /// Which core.
        core: usize,
        /// The discarded line.
        line: LineAddr,
    },
    /// The fault injector perturbed the machine (see [`chats_faults`]).
    /// Only emitted when a fault plan is installed; a machine without one
    /// never records this variant.
    FaultInjected {
        /// When.
        at: Cycle,
        /// The core the fault acted on (the requester for dropped
        /// requests, the receiver for perturbed responses).
        core: usize,
        /// What was injected.
        kind: chats_faults::FaultKind,
    },
    /// The progress watchdog declared `core` stalled: no commit, fallback
    /// completion or halt for a full horizon. The run ends in a structured
    /// [`crate::FailureReport`] right after this event.
    WatchdogFired {
        /// When.
        at: Cycle,
        /// The stalled core.
        core: usize,
    },
}

impl TraceEvent {
    /// Event timestamp.
    #[must_use]
    pub fn at(&self) -> Cycle {
        match self {
            TraceEvent::TxBegin { at, .. }
            | TraceEvent::Commit { at, .. }
            | TraceEvent::Abort { at, .. }
            | TraceEvent::Forward { at, .. }
            | TraceEvent::Validated { at, .. }
            | TraceEvent::Fallback { at, .. }
            | TraceEvent::FallbackRelease { at, .. }
            | TraceEvent::NocSend { at, .. }
            | TraceEvent::ValStallBegin { at, .. }
            | TraceEvent::ValStallEnd { at, .. }
            | TraceEvent::VsbInsert { at, .. }
            | TraceEvent::VsbEvict { at, .. }
            | TraceEvent::FaultInjected { at, .. }
            | TraceEvent::WatchdogFired { at, .. } => *at,
        }
    }

    /// The core this event belongs to, if it is a per-core event (`None`
    /// for interconnect events, whose endpoints may be the directory).
    #[must_use]
    pub fn core(&self) -> Option<usize> {
        match self {
            TraceEvent::TxBegin { core, .. }
            | TraceEvent::Commit { core, .. }
            | TraceEvent::Abort { core, .. }
            | TraceEvent::Validated { core, .. }
            | TraceEvent::Fallback { core, .. }
            | TraceEvent::FallbackRelease { core, .. }
            | TraceEvent::ValStallBegin { core, .. }
            | TraceEvent::ValStallEnd { core, .. }
            | TraceEvent::VsbInsert { core, .. }
            | TraceEvent::VsbEvict { core, .. }
            | TraceEvent::FaultInjected { core, .. }
            | TraceEvent::WatchdogFired { core, .. } => Some(*core),
            TraceEvent::Forward { from, .. } => Some(*from),
            TraceEvent::NocSend { .. } => None,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::TxBegin { at, core } => write!(f, "[{at:>8}] core{core} tx-begin"),
            TraceEvent::Commit { at, core } => write!(f, "[{at:>8}] core{core} commit"),
            TraceEvent::Abort { at, core, cause } => {
                write!(f, "[{at:>8}] core{core} abort ({cause})")
            }
            TraceEvent::Forward {
                at,
                from,
                to,
                line,
                pic,
            } => match pic {
                Some(p) => write!(f, "[{at:>8}] core{from} -> core{to} SpecResp {line} {p}"),
                None => write!(
                    f,
                    "[{at:>8}] core{from} -> core{to} SpecResp {line} (no PiC)"
                ),
            },
            TraceEvent::Validated { at, core, line } => {
                write!(f, "[{at:>8}] core{core} validated {line}")
            }
            TraceEvent::Fallback { at, core } => write!(f, "[{at:>8}] core{core} fallback"),
            TraceEvent::FallbackRelease { at, core } => {
                write!(f, "[{at:>8}] core{core} fallback-release")
            }
            TraceEvent::NocSend {
                at,
                src,
                dst,
                flits,
                arrive,
            } => write!(
                f,
                "[{at:>8}] n{src} -> n{dst} {flits} flit(s), arrives {arrive}"
            ),
            TraceEvent::ValStallBegin { at, core } => {
                write!(f, "[{at:>8}] core{core} validation-stall begin")
            }
            TraceEvent::ValStallEnd { at, core } => {
                write!(f, "[{at:>8}] core{core} validation-stall end")
            }
            TraceEvent::VsbInsert {
                at,
                core,
                line,
                occupancy,
            } => write!(
                f,
                "[{at:>8}] core{core} vsb-insert {line} ({occupancy} held)"
            ),
            TraceEvent::VsbEvict { at, core, line } => {
                write!(f, "[{at:>8}] core{core} vsb-evict {line}")
            }
            TraceEvent::FaultInjected { at, core, kind } => {
                write!(f, "[{at:>8}] core{core} fault-injected {kind}")
            }
            TraceEvent::WatchdogFired { at, core } => {
                write!(f, "[{at:>8}] core{core} watchdog-fired")
            }
        }
    }
}

/// Where trace events go. Implementations must be cheap: `record` sits on
/// the protocol hot path whenever tracing is enabled.
pub trait TraceSink {
    /// Accepts one event. Events arrive in emission order (timestamps
    /// never decrease).
    fn record(&mut self, ev: TraceEvent);

    /// Events this sink has discarded (capacity, I/O errors, ...).
    fn dropped(&self) -> u64 {
        0
    }

    /// Flushes any buffered output. Called when the sink is detached.
    fn flush(&mut self) {}

    /// Downcasting hook so callers of
    /// [`crate::Machine::take_trace_sink`] can recover their concrete
    /// sink. Implement as `Some(self)` to opt in; the default opts out.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}

/// A sink that discards everything (useful to measure tracing overhead
/// without storage costs).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _ev: TraceEvent) {}

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// A bounded in-memory ring: keeps the **latest** `capacity` events and
/// counts every event it had to overwrite, so truncation is always
/// visible (no more silent drops).
#[derive(Debug, Clone)]
pub struct RingSink {
    capacity: usize,
    /// Storage; once full, `head` is the index of the *oldest* event.
    events: Vec<TraceEvent>,
    head: usize,
    dropped: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> RingSink {
        assert!(capacity > 0, "a trace ring needs at least one slot");
        RingSink {
            capacity,
            events: Vec::new(),
            head: 0,
            dropped: 0,
        }
    }

    /// The retained events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.events.len());
        out.extend_from_slice(&self.events[self.head..]);
        out.extend_from_slice(&self.events[..self.head]);
        out
    }

    /// Events overwritten because the ring was full.
    #[must_use]
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, ev: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// The machine's trace dispatcher: `None` (tracing off — the default), a
/// built-in ring, or a caller-provided sink.
#[derive(Default)]
pub(crate) enum Trace {
    /// Tracing disabled; `record` is never called (emission sites guard
    /// with [`Trace::enabled`]).
    #[default]
    Off,
    /// The built-in bounded ring ([`crate::Machine::enable_trace`]).
    Ring(RingSink),
    /// A pluggable sink ([`crate::Machine::set_trace_sink`]).
    Custom(Box<dyn TraceSink>),
}

impl Trace {
    /// `true` when events should be constructed and recorded. Emission
    /// sites check this before building events so disabled tracing costs
    /// one branch and zero allocations.
    #[inline]
    pub(crate) fn enabled(&self) -> bool {
        !matches!(self, Trace::Off)
    }

    pub(crate) fn record(&mut self, ev: TraceEvent) {
        match self {
            Trace::Off => {}
            Trace::Ring(r) => r.record(ev),
            Trace::Custom(s) => s.record(ev),
        }
    }

    /// Retained events, oldest first (ring only; custom sinks own their
    /// storage and return nothing here).
    pub(crate) fn events(&self) -> Vec<TraceEvent> {
        match self {
            Trace::Ring(r) => r.events(),
            _ => Vec::new(),
        }
    }

    pub(crate) fn dropped(&self) -> u64 {
        match self {
            Trace::Off => 0,
            Trace::Ring(r) => r.dropped(),
            Trace::Custom(s) => s.dropped(),
        }
    }
}

impl fmt::Debug for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trace::Off => f.write_str("Trace::Off"),
            Trace::Ring(r) => f
                .debug_struct("Trace::Ring")
                .field("len", &r.events.len())
                .field("dropped", &r.dropped)
                .finish(),
            Trace::Custom(_) => f.write_str("Trace::Custom"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let t = Trace::default();
        assert!(!t.enabled());
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_keeps_latest_and_counts_drops() {
        let mut r = RingSink::new(2);
        for i in 0..5 {
            r.record(TraceEvent::Commit {
                at: Cycle(i),
                core: 0,
            });
        }
        let kept = r.events();
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].at(), Cycle(3));
        assert_eq!(kept[1].at(), Cycle(4));
        assert_eq!(r.dropped_events(), 3);
    }

    #[test]
    fn ring_below_capacity_drops_nothing() {
        let mut r = RingSink::new(8);
        for i in 0..3 {
            r.record(TraceEvent::TxBegin {
                at: Cycle(i),
                core: 1,
            });
        }
        assert_eq!(r.events().len(), 3);
        assert_eq!(r.dropped_events(), 0);
    }

    #[test]
    fn null_sink_discards() {
        let mut s = NullSink;
        s.record(TraceEvent::TxBegin {
            at: Cycle(0),
            core: 0,
        });
        assert_eq!(s.dropped(), 0);
    }

    #[test]
    fn display_is_informative() {
        let ev = TraceEvent::Forward {
            at: Cycle(120),
            from: 3,
            to: 5,
            line: LineAddr(0x40),
            pic: Some(Pic::INIT),
        };
        let s = ev.to_string();
        assert!(s.contains("core3"));
        assert!(s.contains("core5"));
        assert!(s.contains("SpecResp"));
        assert_eq!(ev.at(), Cycle(120));
        assert_eq!(ev.core(), Some(3));

        let noc = TraceEvent::NocSend {
            at: Cycle(7),
            src: 0,
            dst: 4,
            flits: 5,
            arrive: Cycle(13),
        };
        assert!(noc.to_string().contains("n0 -> n4"));
        assert_eq!(noc.core(), None);
    }
}
