//! Optional event tracing.
//!
//! When enabled (see [`crate::Machine::enable_trace`]), the machine records
//! one [`TraceEvent`] per interesting protocol action: transaction
//! lifecycle, forwardings, validations and fallback episodes. Traces make
//! chain formation visible — which transaction produced for which, with
//! which PiCs — and power the `chain_anatomy` example.
//!
//! Tracing is off by default and costs nothing when disabled.

use chats_core::{AbortCause, Pic};
use chats_mem::LineAddr;
use chats_sim::Cycle;
use std::fmt;

/// One recorded protocol action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A transaction attempt began.
    TxBegin {
        /// When.
        at: Cycle,
        /// Which core.
        core: usize,
    },
    /// A transaction committed.
    Commit {
        /// When.
        at: Cycle,
        /// Which core.
        core: usize,
    },
    /// A transaction attempt aborted.
    Abort {
        /// When.
        at: Cycle,
        /// Which core.
        core: usize,
        /// Why.
        cause: AbortCause,
    },
    /// A producer answered a conflicting request with a `SpecResp`.
    Forward {
        /// When.
        at: Cycle,
        /// Producer core.
        from: usize,
        /// Consumer core.
        to: usize,
        /// Conflicting line.
        line: LineAddr,
        /// The PiC carried by the `SpecResp` (`None` from power/naive/LEVC
        /// producers).
        pic: Option<Pic>,
    },
    /// A speculatively received line validated successfully.
    Validated {
        /// When.
        at: Cycle,
        /// Consumer core.
        core: usize,
        /// The line that is now genuinely owned.
        line: LineAddr,
    },
    /// A thread acquired the fallback path (lock or forced token).
    Fallback {
        /// When.
        at: Cycle,
        /// Which core.
        core: usize,
    },
}

impl TraceEvent {
    /// Event timestamp.
    #[must_use]
    pub fn at(&self) -> Cycle {
        match self {
            TraceEvent::TxBegin { at, .. }
            | TraceEvent::Commit { at, .. }
            | TraceEvent::Abort { at, .. }
            | TraceEvent::Forward { at, .. }
            | TraceEvent::Validated { at, .. }
            | TraceEvent::Fallback { at, .. } => *at,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::TxBegin { at, core } => write!(f, "[{at:>8}] core{core} tx-begin"),
            TraceEvent::Commit { at, core } => write!(f, "[{at:>8}] core{core} commit"),
            TraceEvent::Abort { at, core, cause } => {
                write!(f, "[{at:>8}] core{core} abort ({cause})")
            }
            TraceEvent::Forward {
                at,
                from,
                to,
                line,
                pic,
            } => match pic {
                Some(p) => write!(f, "[{at:>8}] core{from} -> core{to} SpecResp {line} {p}"),
                None => write!(
                    f,
                    "[{at:>8}] core{from} -> core{to} SpecResp {line} (no PiC)"
                ),
            },
            TraceEvent::Validated { at, core, line } => {
                write!(f, "[{at:>8}] core{core} validated {line}")
            }
            TraceEvent::Fallback { at, core } => write!(f, "[{at:>8}] core{core} fallback"),
        }
    }
}

/// The trace buffer: bounded so runaway runs cannot exhaust memory.
#[derive(Debug, Default)]
pub(crate) struct Trace {
    enabled: bool,
    events: Vec<TraceEvent>,
    limit: usize,
}

impl Trace {
    pub(crate) fn enable(&mut self, limit: usize) {
        self.enabled = true;
        self.limit = limit;
    }

    pub(crate) fn record(&mut self, ev: TraceEvent) {
        if self.enabled && self.events.len() < self.limit {
            self.events.push(ev);
        }
    }

    pub(crate) fn events(&self) -> &[TraceEvent] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::default();
        t.record(TraceEvent::TxBegin {
            at: Cycle(1),
            core: 0,
        });
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_trace_records_up_to_limit() {
        let mut t = Trace::default();
        t.enable(2);
        for i in 0..5 {
            t.record(TraceEvent::Commit {
                at: Cycle(i),
                core: 0,
            });
        }
        assert_eq!(t.events().len(), 2);
    }

    #[test]
    fn display_is_informative() {
        let ev = TraceEvent::Forward {
            at: Cycle(120),
            from: 3,
            to: 5,
            line: LineAddr(0x40),
            pic: Some(Pic::INIT),
        };
        let s = ev.to_string();
        assert!(s.contains("core3"));
        assert!(s.contains("core5"));
        assert!(s.contains("SpecResp"));
        assert_eq!(ev.at(), Cycle(120));
    }
}
