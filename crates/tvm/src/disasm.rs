//! Disassembler: human-readable listings of TxVM programs.

use crate::inst::{Inst, Program};
use std::fmt;

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Imm(d, v) => write!(f, "imm   {d}, {v}"),
            Inst::Mov(d, s) => write!(f, "mov   {d}, {s}"),
            Inst::Add(d, a, b) => write!(f, "add   {d}, {a}, {b}"),
            Inst::AddI(d, a, v) => write!(f, "addi  {d}, {a}, {v}"),
            Inst::Sub(d, a, b) => write!(f, "sub   {d}, {a}, {b}"),
            Inst::Mul(d, a, b) => write!(f, "mul   {d}, {a}, {b}"),
            Inst::MulI(d, a, v) => write!(f, "muli  {d}, {a}, {v}"),
            Inst::DivI(d, a, v) => write!(f, "divi  {d}, {a}, {v}"),
            Inst::RemI(d, a, v) => write!(f, "remi  {d}, {a}, {v}"),
            Inst::AndI(d, a, v) => write!(f, "andi  {d}, {a}, {v:#x}"),
            Inst::Xor(d, a, b) => write!(f, "xor   {d}, {a}, {b}"),
            Inst::ShlI(d, a, v) => write!(f, "shli  {d}, {a}, {v}"),
            Inst::ShrI(d, a, v) => write!(f, "shri  {d}, {a}, {v}"),
            Inst::Rand(d, b) => write!(f, "rand  {d}, {b}"),
            Inst::Jmp(t) => write!(f, "jmp   @{t}"),
            Inst::Beq(a, b, t) => write!(f, "beq   {a}, {b}, @{t}"),
            Inst::Bne(a, b, t) => write!(f, "bne   {a}, {b}, @{t}"),
            Inst::Blt(a, b, t) => write!(f, "blt   {a}, {b}, @{t}"),
            Inst::Bge(a, b, t) => write!(f, "bge   {a}, {b}, @{t}"),
            Inst::Load(d, a) => write!(f, "load  {d}, [{a}]"),
            Inst::Store(a, v) => write!(f, "store [{a}], {v}"),
            Inst::TxBegin => write!(f, "tx.begin"),
            Inst::TxEnd => write!(f, "tx.end"),
            Inst::Pause(c) => write!(f, "pause {c}"),
            Inst::Halt => write!(f, "halt"),
        }
    }
}

impl Program {
    /// A full listing with instruction indices and branch-target markers,
    /// for debugging workload kernels.
    ///
    /// # Example
    ///
    /// ```
    /// use chats_tvm::{ProgramBuilder, Reg};
    /// let mut b = ProgramBuilder::new();
    /// b.imm(Reg(0), 7);
    /// b.tx_begin();
    /// b.store(Reg(0), Reg(0));
    /// b.tx_end();
    /// let listing = b.build().disassemble();
    /// assert!(listing.contains("tx.begin"));
    /// assert!(listing.contains("store [r0], r0"));
    /// ```
    #[must_use]
    pub fn disassemble(&self) -> String {
        use std::collections::HashSet;
        use std::fmt::Write as _;
        let targets: HashSet<usize> = self
            .instructions()
            .iter()
            .filter_map(|i| match *i {
                Inst::Jmp(t)
                | Inst::Beq(_, _, t)
                | Inst::Bne(_, _, t)
                | Inst::Blt(_, _, t)
                | Inst::Bge(_, _, t) => Some(t),
                _ => None,
            })
            .collect();
        let mut out = String::new();
        for (pc, inst) in self.instructions().iter().enumerate() {
            let mark = if targets.contains(&pc) { ">" } else { " " };
            let _ = writeln!(out, "{mark}{pc:>4}: {inst}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::Reg;

    #[test]
    fn every_instruction_kind_renders() {
        let insts = [
            Inst::Imm(Reg(0), 1),
            Inst::Mov(Reg(0), Reg(1)),
            Inst::Add(Reg(0), Reg(1), Reg(2)),
            Inst::AddI(Reg(0), Reg(1), 3),
            Inst::Sub(Reg(0), Reg(1), Reg(2)),
            Inst::Mul(Reg(0), Reg(1), Reg(2)),
            Inst::MulI(Reg(0), Reg(1), 3),
            Inst::DivI(Reg(0), Reg(1), 3),
            Inst::RemI(Reg(0), Reg(1), 3),
            Inst::AndI(Reg(0), Reg(1), 0xff),
            Inst::Xor(Reg(0), Reg(1), Reg(2)),
            Inst::ShlI(Reg(0), Reg(1), 3),
            Inst::ShrI(Reg(0), Reg(1), 3),
            Inst::Rand(Reg(0), Reg(1)),
            Inst::Jmp(9),
            Inst::Beq(Reg(0), Reg(1), 9),
            Inst::Bne(Reg(0), Reg(1), 9),
            Inst::Blt(Reg(0), Reg(1), 9),
            Inst::Bge(Reg(0), Reg(1), 9),
            Inst::Load(Reg(0), Reg(1)),
            Inst::Store(Reg(0), Reg(1)),
            Inst::TxBegin,
            Inst::TxEnd,
            Inst::Pause(5),
            Inst::Halt,
        ];
        for i in insts {
            assert!(!i.to_string().is_empty());
        }
    }

    #[test]
    fn branch_targets_are_marked() {
        let mut b = ProgramBuilder::new();
        let top = b.label();
        b.imm(Reg(0), 1);
        b.bind(top);
        b.addi(Reg(0), Reg(0), 1);
        b.jmp(top);
        let listing = b.build().disassemble();
        let lines: Vec<&str> = listing.lines().collect();
        assert!(lines[1].starts_with('>'), "target line marked: {listing}");
        assert!(lines[0].starts_with(' '));
    }

    #[test]
    fn listing_has_one_line_per_instruction() {
        let mut b = ProgramBuilder::new();
        b.imm(Reg(0), 1).imm(Reg(1), 2);
        let p = b.build();
        assert_eq!(p.disassemble().lines().count(), p.len());
    }
}
