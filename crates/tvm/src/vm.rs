//! The TxVM interpreter.

use crate::inst::{Inst, Program, Reg, NUM_REGS};
use chats_mem::Addr;
use chats_sim::SimRng;

/// What the VM needs from the outside world to make progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmEvent {
    /// `cycles` of core-local work were consumed; call [`Vm::step`] again
    /// afterwards.
    Compute(u64),
    /// The VM is paused on a load of `Addr`; resume with
    /// [`Vm::complete_load`].
    Load(Addr),
    /// The VM is paused on a store of the value to `Addr`; resume with
    /// [`Vm::complete_store`].
    Store(Addr, u64),
    /// A `TxBegin` marker was reached (the HTM engine decides what happens;
    /// the VM has already advanced past it).
    TxBegin,
    /// A `TxEnd` marker was reached.
    TxEnd,
    /// The program finished.
    Halted,
}

/// Resumable snapshot of the architectural state, captured at `TxBegin` so
/// aborts can re-execute the transaction body.
///
/// The RNG stream is part of the snapshot: a retried transaction must draw
/// the same `Rand` values as its aborted attempt, exactly as re-executing
/// the same code path would on real hardware. This also makes each thread's
/// committed effects a pure function of (program, seed), independent of how
/// many aborts the contention manager inflicted — the property the
/// cross-policy differential tests rely on.
#[derive(Debug, Clone)]
pub struct VmSnapshot {
    pc: usize,
    regs: [u64; NUM_REGS],
    rng: SimRng,
}

impl VmSnapshot {
    /// The program counter captured in this snapshot. Stable across
    /// attempts of the same transaction, so it doubles as a static
    /// transaction-site identifier.
    #[must_use]
    pub fn pc(&self) -> usize {
        self.pc
    }
}

impl chats_snap::Snap for VmSnapshot {
    fn save(&self, w: &mut chats_snap::SnapWriter) {
        self.pc.save(w);
        self.regs.save(w);
        self.rng.save(w);
    }
    fn load(r: &mut chats_snap::SnapReader<'_>) -> Result<Self, chats_snap::SnapError> {
        Ok(VmSnapshot {
            pc: chats_snap::Snap::load(r)?,
            regs: chats_snap::Snap::load(r)?,
            rng: chats_snap::Snap::load(r)?,
        })
    }
}

/// One hardware thread's interpreter state.
///
/// See the [crate docs](crate) for the stepping protocol.
#[derive(Debug, Clone)]
pub struct Vm {
    program: Program,
    pc: usize,
    regs: [u64; NUM_REGS],
    pending: Option<Pending>,
    halted: bool,
    rng: SimRng,
    retired: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pending {
    Load(Reg),
    Store,
}

impl Vm {
    /// Creates a VM at the start of `program`, with its own random stream
    /// derived from `seed`. All registers start at zero.
    #[must_use]
    pub fn new(program: Program, seed: u64) -> Vm {
        Vm {
            program,
            pc: 0,
            regs: [0; NUM_REGS],
            pending: None,
            halted: false,
            rng: SimRng::seed_from(seed),
            retired: 0,
        }
    }

    /// Pre-loads a register before execution starts (thread id, base
    /// addresses, ...).
    pub fn preset_reg(&mut self, reg: Reg, value: u64) {
        self.regs[reg.idx()] = value;
    }

    /// Reads a register (for tests and workload invariant checks).
    #[must_use]
    pub fn reg(&self, reg: Reg) -> u64 {
        self.regs[reg.idx()]
    }

    /// Instructions retired so far.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// `true` once `Halt` has been reached.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Captures the architectural state for transactional rollback.
    ///
    /// Note the captured `pc` points at the instruction *after* the
    /// `TxBegin` when taken right after the [`VmEvent::TxBegin`] event, so
    /// restoring re-runs the transaction body, not the marker.
    #[must_use]
    pub fn snapshot(&self) -> VmSnapshot {
        VmSnapshot {
            pc: self.pc,
            regs: self.regs,
            rng: self.rng.clone(),
        }
    }

    /// Rolls back to a snapshot (transaction abort). Clears any pending
    /// memory operation and un-halts the VM — the snapshot's program
    /// counter determines what executes next.
    pub fn restore(&mut self, snap: &VmSnapshot) {
        self.pc = snap.pc;
        self.regs = snap.regs;
        self.rng = snap.rng.clone();
        self.pending = None;
        self.halted = false;
    }

    /// Delivers the value of the load the VM is paused on.
    ///
    /// # Panics
    ///
    /// Panics if the VM is not paused on a load.
    pub fn complete_load(&mut self, value: u64) {
        match self.pending.take() {
            Some(Pending::Load(dst)) => {
                self.regs[dst.idx()] = value;
                self.retired += 1;
            }
            other => panic!("complete_load while pending = {other:?}"),
        }
    }

    /// Acknowledges the store the VM is paused on.
    ///
    /// # Panics
    ///
    /// Panics if the VM is not paused on a store.
    pub fn complete_store(&mut self) {
        match self.pending.take() {
            Some(Pending::Store) => self.retired += 1,
            other => panic!("complete_store while pending = {other:?}"),
        }
    }

    /// Executes until the next externally visible event.
    ///
    /// # Panics
    ///
    /// Panics if called while a memory operation is pending (the caller
    /// must complete it first), or after `Halted` was returned.
    pub fn step(&mut self) -> VmEvent {
        assert!(self.pending.is_none(), "step while a memory op is pending");
        if self.halted {
            return VmEvent::Halted;
        }
        let inst = self.program.fetch(self.pc);
        self.pc += 1;
        match inst {
            Inst::Imm(d, v) => self.alu(|r| r[d.idx()] = v),
            Inst::Mov(d, s) => self.alu(|r| r[d.idx()] = r[s.idx()]),
            Inst::Add(d, a, b) => self.alu(|r| r[d.idx()] = r[a.idx()].wrapping_add(r[b.idx()])),
            Inst::AddI(d, a, v) => self.alu(|r| r[d.idx()] = r[a.idx()].wrapping_add(v)),
            Inst::Sub(d, a, b) => self.alu(|r| r[d.idx()] = r[a.idx()].wrapping_sub(r[b.idx()])),
            Inst::Mul(d, a, b) => self.alu(|r| r[d.idx()] = r[a.idx()].wrapping_mul(r[b.idx()])),
            Inst::MulI(d, a, v) => self.alu(|r| r[d.idx()] = r[a.idx()].wrapping_mul(v)),
            Inst::DivI(d, a, v) => self.alu(|r| r[d.idx()] = r[a.idx()] / v),
            Inst::RemI(d, a, v) => self.alu(|r| r[d.idx()] = r[a.idx()] % v),
            Inst::AndI(d, a, v) => self.alu(|r| r[d.idx()] = r[a.idx()] & v),
            Inst::Xor(d, a, b) => self.alu(|r| r[d.idx()] = r[a.idx()] ^ r[b.idx()]),
            Inst::ShlI(d, a, v) => self.alu(|r| r[d.idx()] = r[a.idx()] << v),
            Inst::ShrI(d, a, v) => self.alu(|r| r[d.idx()] = r[a.idx()] >> v),
            Inst::Rand(d, bound) => {
                let b = self.regs[bound.idx()].max(1);
                let v = self.rng.below(b);
                self.regs[d.idx()] = v;
                self.retired += 1;
                VmEvent::Compute(1)
            }
            Inst::Jmp(t) => {
                self.pc = t;
                self.retired += 1;
                VmEvent::Compute(1)
            }
            Inst::Beq(a, b, t) => self.branch(t, self.regs[a.idx()] == self.regs[b.idx()]),
            Inst::Bne(a, b, t) => self.branch(t, self.regs[a.idx()] != self.regs[b.idx()]),
            Inst::Blt(a, b, t) => self.branch(t, self.regs[a.idx()] < self.regs[b.idx()]),
            Inst::Bge(a, b, t) => self.branch(t, self.regs[a.idx()] >= self.regs[b.idx()]),
            Inst::Load(d, addr) => {
                self.pending = Some(Pending::Load(d));
                VmEvent::Load(Addr(self.regs[addr.idx()]))
            }
            Inst::Store(addr, val) => {
                self.pending = Some(Pending::Store);
                VmEvent::Store(Addr(self.regs[addr.idx()]), self.regs[val.idx()])
            }
            Inst::TxBegin => {
                self.retired += 1;
                VmEvent::TxBegin
            }
            Inst::TxEnd => {
                self.retired += 1;
                VmEvent::TxEnd
            }
            Inst::Pause(c) => {
                self.retired += 1;
                VmEvent::Compute(c)
            }
            Inst::Halt => {
                self.halted = true;
                self.pc -= 1; // stay on Halt
                VmEvent::Halted
            }
        }
    }

    fn alu(&mut self, f: impl FnOnce(&mut [u64; NUM_REGS])) -> VmEvent {
        f(&mut self.regs);
        self.retired += 1;
        VmEvent::Compute(1)
    }

    fn branch(&mut self, target: usize, taken: bool) -> VmEvent {
        if taken {
            self.pc = target;
        }
        self.retired += 1;
        VmEvent::Compute(1)
    }

    /// Serializes the mutable interpreter state — everything except the
    /// program, which is immutable and deterministically rebuilt by the
    /// workload setup on restore (checkpoints carry machine state, not
    /// code).
    pub fn save_state(&self, w: &mut chats_snap::SnapWriter) {
        use chats_snap::Snap;
        w.u64(self.pc as u64);
        self.regs.save(w);
        match self.pending {
            None => w.u8(0),
            Some(Pending::Load(reg)) => {
                w.u8(1);
                w.u8(reg.0);
            }
            Some(Pending::Store) => w.u8(2),
        }
        self.halted.save(w);
        self.rng.save(w);
        w.u64(self.retired);
    }

    /// Restores state captured by [`Vm::save_state`] into a VM that was
    /// rebuilt with the same program.
    ///
    /// # Errors
    ///
    /// Fails on a malformed stream or a program counter outside the
    /// program.
    pub fn restore_state(
        &mut self,
        r: &mut chats_snap::SnapReader<'_>,
    ) -> Result<(), chats_snap::SnapError> {
        use chats_snap::Snap;
        let pc = usize::load(r)?;
        if pc >= self.program.len() {
            return Err(r.err(format!(
                "pc {pc} outside the {}-instruction program",
                self.program.len()
            )));
        }
        self.pc = pc;
        self.regs = Snap::load(r)?;
        self.pending = match r.u8()? {
            0 => None,
            1 => {
                let reg = r.u8()?;
                if reg as usize >= NUM_REGS {
                    return Err(r.err(format!("pending-load register r{reg} out of range")));
                }
                Some(Pending::Load(Reg(reg)))
            }
            2 => Some(Pending::Store),
            t => return Err(r.err(format!("bad pending tag {t}"))),
        };
        self.halted = Snap::load(r)?;
        self.rng = Snap::load(r)?;
        self.retired = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    /// Runs a VM to completion against a flat test memory, returning the
    /// memory. Panics after `fuel` events to catch infinite loops.
    fn run(vm: &mut Vm, mem: &mut Vec<u64>, mut fuel: u64) {
        loop {
            fuel = fuel.checked_sub(1).expect("out of fuel: runaway program");
            match vm.step() {
                VmEvent::Compute(_) | VmEvent::TxBegin | VmEvent::TxEnd => {}
                VmEvent::Load(a) => {
                    let v = mem.get(a.0 as usize).copied().unwrap_or(0);
                    vm.complete_load(v);
                }
                VmEvent::Store(a, v) => {
                    let i = a.0 as usize;
                    if mem.len() <= i {
                        mem.resize(i + 1, 0);
                    }
                    mem[i] = v;
                    vm.complete_store();
                }
                VmEvent::Halted => return,
            }
        }
    }

    #[test]
    fn arithmetic_program() {
        let mut b = ProgramBuilder::new();
        b.imm(Reg(0), 6).imm(Reg(1), 7);
        b.mul(Reg(2), Reg(0), Reg(1));
        b.addi(Reg(2), Reg(2), 8);
        b.divi(Reg(3), Reg(2), 10);
        b.remi(Reg(4), Reg(2), 10);
        b.halt();
        let mut vm = Vm::new(b.build(), 0);
        run(&mut vm, &mut Vec::new(), 100);
        assert_eq!(vm.reg(Reg(2)), 50);
        assert_eq!(vm.reg(Reg(3)), 5);
        assert_eq!(vm.reg(Reg(4)), 0);
    }

    #[test]
    fn loop_sums_memory() {
        // mem[i] = i for i in 0..8; then sum them.
        let mut b = ProgramBuilder::new();
        let (i, n, sum, tmp) = (Reg(0), Reg(1), Reg(2), Reg(3));
        b.imm(i, 0).imm(n, 8).imm(sum, 0);
        let top = b.label();
        b.bind(top);
        b.store(i, i);
        b.addi(i, i, 1);
        b.blt(i, n, top);
        // second loop: sum
        b.imm(i, 0);
        let top2 = b.label();
        b.bind(top2);
        b.load(tmp, i);
        b.add(sum, sum, tmp);
        b.addi(i, i, 1);
        b.blt(i, n, top2);
        b.halt();
        let mut vm = Vm::new(b.build(), 0);
        let mut mem = Vec::new();
        run(&mut vm, &mut mem, 1000);
        assert_eq!(vm.reg(Reg(2)), 28);
        assert_eq!(mem[..8], [0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn snapshot_restore_replays_transaction() {
        let mut b = ProgramBuilder::new();
        b.imm(Reg(0), 5);
        b.tx_begin();
        b.addi(Reg(0), Reg(0), 1);
        b.tx_end();
        b.halt();
        let mut vm = Vm::new(b.build(), 0);
        assert_eq!(vm.step(), VmEvent::Compute(1));
        assert_eq!(vm.step(), VmEvent::TxBegin);
        let snap = vm.snapshot();
        assert_eq!(vm.step(), VmEvent::Compute(1)); // addi
        assert_eq!(vm.reg(Reg(0)), 6);
        vm.restore(&snap);
        assert_eq!(vm.reg(Reg(0)), 5, "rollback restores registers");
        assert_eq!(vm.step(), VmEvent::Compute(1)); // addi re-executes
        assert_eq!(vm.reg(Reg(0)), 6);
        assert_eq!(vm.step(), VmEvent::TxEnd);
    }

    #[test]
    fn restore_clears_pending_load() {
        let mut b = ProgramBuilder::new();
        b.tx_begin();
        b.load(Reg(1), Reg(0));
        b.tx_end();
        b.halt();
        let mut vm = Vm::new(b.build(), 0);
        assert_eq!(vm.step(), VmEvent::TxBegin);
        let snap = vm.snapshot();
        assert_eq!(vm.step(), VmEvent::Load(Addr(0)));
        vm.restore(&snap); // abort mid-load
        assert_eq!(vm.step(), VmEvent::Load(Addr(0)), "load re-issues");
        vm.complete_load(9);
        assert_eq!(vm.reg(Reg(1)), 9);
    }

    #[test]
    fn restore_replays_rand_stream() {
        let mut b = ProgramBuilder::new();
        b.imm(Reg(1), 1_000_000);
        b.tx_begin();
        b.rand(Reg(0), Reg(1));
        b.tx_end();
        b.halt();
        let mut vm = Vm::new(b.build(), 77);
        assert_eq!(vm.step(), VmEvent::Compute(1));
        assert_eq!(vm.step(), VmEvent::TxBegin);
        let snap = vm.snapshot();
        assert_eq!(vm.step(), VmEvent::Compute(1)); // rand
        let first = vm.reg(Reg(0));
        vm.restore(&snap); // abort: the retry must draw the same value
        assert_eq!(vm.step(), VmEvent::Compute(1));
        assert_eq!(vm.reg(Reg(0)), first, "retried Rand must replay");
    }

    #[test]
    fn halted_vm_stays_halted() {
        let mut b = ProgramBuilder::new();
        b.halt();
        let mut vm = Vm::new(b.build(), 0);
        assert_eq!(vm.step(), VmEvent::Halted);
        assert_eq!(vm.step(), VmEvent::Halted);
        assert!(vm.is_halted());
    }

    #[test]
    #[should_panic(expected = "pending")]
    fn step_during_pending_panics() {
        let mut b = ProgramBuilder::new();
        b.load(Reg(0), Reg(0));
        b.halt();
        let mut vm = Vm::new(b.build(), 0);
        let _ = vm.step();
        let _ = vm.step();
    }

    #[test]
    #[should_panic(expected = "complete_load")]
    fn spurious_complete_load_panics() {
        let mut b = ProgramBuilder::new();
        b.halt();
        let mut vm = Vm::new(b.build(), 0);
        vm.complete_load(0);
    }

    #[test]
    fn rand_is_bounded_and_deterministic() {
        let mut b = ProgramBuilder::new();
        b.imm(Reg(1), 10);
        b.rand(Reg(0), Reg(1));
        b.halt();
        let prog = b.build();
        let mut v1 = Vm::new(prog.clone(), 42);
        let mut v2 = Vm::new(prog, 42);
        run(&mut v1, &mut Vec::new(), 10);
        run(&mut v2, &mut Vec::new(), 10);
        assert_eq!(v1.reg(Reg(0)), v2.reg(Reg(0)));
        assert!(v1.reg(Reg(0)) < 10);
    }

    #[test]
    fn preset_reg_visible_to_program() {
        let mut b = ProgramBuilder::new();
        b.addi(Reg(1), Reg(0), 1);
        b.halt();
        let mut vm = Vm::new(b.build(), 0);
        vm.preset_reg(Reg(0), 99);
        run(&mut vm, &mut Vec::new(), 10);
        assert_eq!(vm.reg(Reg(1)), 100);
    }

    #[test]
    fn retired_counts_instructions() {
        let mut b = ProgramBuilder::new();
        b.imm(Reg(0), 1).imm(Reg(1), 2).add(Reg(2), Reg(0), Reg(1));
        b.halt();
        let mut vm = Vm::new(b.build(), 0);
        run(&mut vm, &mut Vec::new(), 10);
        assert_eq!(vm.retired(), 3);
    }
}
