#![warn(missing_docs)]

//! The transactional bytecode VM (TxVM).
//!
//! gem5 runs real x86 binaries; this simulator runs workloads compiled to a
//! small deterministic bytecode instead (see DESIGN.md for the substitution
//! argument). Each simulated hardware thread executes one [`Vm`] over a
//! shared [`Program`]; the timing machine drives it step by step:
//!
//! 1. call [`Vm::step`], which either consumes ALU work (returning
//!    [`VmEvent::Compute`]) or *pauses* at a memory access or transaction
//!    boundary,
//! 2. perform the access through the simulated memory hierarchy, charging
//!    real latencies,
//! 3. resume the VM with the loaded value ([`Vm::complete_load`]) or the
//!    store acknowledgement ([`Vm::complete_store`]).
//!
//! Transactions are delimited by `TxBegin` / `TxEnd` instructions. On abort
//! the machine rolls the VM back with the [`VmSnapshot`] captured at
//! `TxBegin` and re-executes.
//!
//! # Example
//!
//! ```
//! use chats_tvm::{ProgramBuilder, Reg, Vm, VmEvent};
//! use chats_mem::Addr;
//!
//! let mut b = ProgramBuilder::new();
//! b.imm(Reg(0), 100);        // address
//! b.imm(Reg(1), 7);          // value
//! b.store(Reg(0), Reg(1));   // mem[100] = 7
//! b.halt();
//! let mut vm = Vm::new(b.build(), 0);
//!
//! assert_eq!(vm.step(), VmEvent::Compute(1)); // imm
//! assert_eq!(vm.step(), VmEvent::Compute(1)); // imm
//! assert_eq!(vm.step(), VmEvent::Store(Addr(100), 7));
//! vm.complete_store();
//! assert_eq!(vm.step(), VmEvent::Halted);
//! ```

pub mod builder;
pub mod disasm;
pub mod gen;
pub mod inst;
pub mod vm;

pub use builder::{Label, ProgramBuilder};
pub use gen::Kernel;
pub use inst::{Inst, Program, Reg};
pub use vm::{Vm, VmEvent, VmSnapshot};
