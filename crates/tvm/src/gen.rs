//! Attack-kernel program generators for schedule exploration and
//! differential testing.
//!
//! Every generator returns a [`Kernel`]: a program plus the word addresses
//! of its committed counters and the number of increments one thread
//! contributes to them. All kernels are *counted-increment* workloads, so a
//! machine-independent invariant holds regardless of policy, seed or
//! interleaving:
//!
//! ```text
//! sum over kernel.counters of final word value == threads * kernel.per_thread
//! ```
//!
//! (Each increment is a transactional read-modify-write; serializability
//! means none may be lost or duplicated.) The kernels differ in which HTM
//! mechanism they lean on — chained forwarding, VSB capacity, L1 capacity,
//! late validation — so an exploration harness can aim schedules at
//! specific protocol corners.

use crate::builder::ProgramBuilder;
use crate::inst::{Program, Reg};

/// Words per cache line; mirrors `chats_mem::WORDS_PER_LINE` without
/// creating a dependency cycle (the constant is architectural and fixed).
const WORDS_PER_LINE: u64 = 8;

/// A generated workload kernel with its committed-sum invariant.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// The program every thread runs.
    pub program: Program,
    /// Word addresses of the shared counters the kernel increments.
    pub counters: Vec<u64>,
    /// Total increments ONE thread commits across all `counters`; the
    /// expected final sum is `threads * per_thread`.
    pub per_thread: u64,
}

/// Word address of the first word of line `l`.
fn line_word(l: u64) -> u64 {
    l * WORDS_PER_LINE
}

/// Emits `mem[addr_reg] += 1` (transactional read-modify-write).
fn emit_incr(b: &mut ProgramBuilder, addr: Reg, v: Reg) {
    b.load(v, addr);
    b.addi(v, v, 1);
    b.store(addr, v);
}

/// Randomized contention: each thread runs `iters` transactions, each
/// incrementing `per_tx` random counters from a pool of `pool` lines.
///
/// The classic serializability torture kernel (identical to the one used
/// by the machine's property tests). Invariant: the pool's counters sum to
/// `threads * iters * per_tx`.
///
/// # Panics
///
/// Panics if any argument is zero.
#[must_use]
pub fn torture(iters: u64, per_tx: u64, pool: u64) -> Kernel {
    assert!(
        iters > 0 && per_tx > 0 && pool > 0,
        "degenerate torture kernel"
    );
    let (i, n, j, k, addr, v, bound) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4), Reg(5), Reg(6));
    let mut b = ProgramBuilder::new();
    b.imm(i, 0).imm(n, iters);
    let outer = b.label();
    b.bind(outer);
    b.tx_begin();
    b.imm(j, 0);
    let inner = b.label();
    b.bind(inner);
    b.imm(bound, pool);
    b.rand(k, bound);
    b.shli(addr, k, 3);
    emit_incr(&mut b, addr, v);
    b.addi(j, j, 1);
    b.imm(k, per_tx);
    b.blt(j, k, inner);
    b.tx_end();
    b.pause(30);
    b.addi(i, i, 1);
    b.blt(i, n, outer);
    b.halt();
    Kernel {
        program: b.build(),
        counters: (0..pool).map(line_word).collect(),
        per_thread: iters * per_tx,
    }
}

/// Chained forwarding ladder: every transaction increments the *same*
/// `depth` counters in fixed ascending line order.
///
/// With all threads climbing the ladder in the same order, a writer of
/// line `k` is typically still speculative when the next thread reads it,
/// so CHATS builds producer→consumer chains of length up to `threads`.
/// Invariant: each of the `depth` counters ends at `threads * iters`.
///
/// # Panics
///
/// Panics if `iters` or `depth` is zero.
#[must_use]
pub fn chain_ladder(iters: u64, depth: u64) -> Kernel {
    assert!(iters > 0 && depth > 0, "degenerate chain_ladder kernel");
    let (i, n, addr, v, end) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4));
    let mut b = ProgramBuilder::new();
    b.imm(i, 0).imm(n, iters);
    let outer = b.label();
    b.bind(outer);
    b.tx_begin();
    b.imm(addr, 0);
    b.imm(end, line_word(depth));
    let rung = b.label();
    b.bind(rung);
    emit_incr(&mut b, addr, v);
    b.addi(addr, addr, WORDS_PER_LINE);
    b.blt(addr, end, rung);
    b.tx_end();
    b.pause(20);
    b.addi(i, i, 1);
    b.blt(i, n, outer);
    b.halt();
    Kernel {
        program: b.build(),
        counters: (0..depth).map(line_word).collect(),
        per_thread: iters * depth,
    }
}

/// VSB saturator: every transaction read-modify-writes `lines` distinct
/// contended lines.
///
/// Each speculatively forwarded line a consumer touches occupies one
/// Validation State Buffer entry until validated; with `lines` above the
/// VSB capacity (4 in the paper configuration) the buffer must fill and
/// the consumer stall or abort. Invariant: the `lines` counters sum to
/// `threads * iters * lines`.
///
/// # Panics
///
/// Panics if `iters` or `lines` is zero.
#[must_use]
pub fn vsb_filler(iters: u64, lines: u64) -> Kernel {
    let k = chain_ladder(iters, lines);
    Kernel {
        program: k.program,
        counters: k.counters,
        per_thread: k.per_thread,
    }
}

/// Observer mix: every transaction increments ONE random counter from a
/// pool of `pool` lines, then loads every counter in the pool *read-only*.
///
/// The read-only observations are what give the atomicity oracle teeth:
/// in pure read-modify-write kernels every read is of a word the
/// transaction itself rewrites, which the commit-time check rightly
/// exempts. Here a consumer that commits having observed a forwarded
/// value its producer later aborted is flagged directly
/// (`AtomicityAtCommit`), not just via the final counter sum.
/// Invariant: the pool's counters sum to `threads * iters`.
///
/// # Panics
///
/// Panics if `iters` or `pool` is zero.
#[must_use]
pub fn observer(iters: u64, pool: u64) -> Kernel {
    assert!(iters > 0 && pool > 0, "degenerate observer kernel");
    let (i, n, k, addr, v, bound, end) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4), Reg(5), Reg(6));
    let mut b = ProgramBuilder::new();
    b.imm(i, 0).imm(n, iters);
    let outer = b.label();
    b.bind(outer);
    b.tx_begin();
    b.imm(bound, pool);
    b.rand(k, bound);
    b.shli(addr, k, 3);
    emit_incr(&mut b, addr, v);
    b.imm(addr, 0);
    b.imm(end, line_word(pool));
    let scan = b.label();
    b.bind(scan);
    b.load(v, addr);
    b.addi(addr, addr, WORDS_PER_LINE);
    b.blt(addr, end, scan);
    b.tx_end();
    b.pause(30);
    b.addi(i, i, 1);
    b.blt(i, n, outer);
    b.halt();
    Kernel {
        program: b.build(),
        counters: (0..pool).map(line_word).collect(),
        per_thread: iters,
    }
}

/// L1 set-capacity prober: increment one contended counter, then sweep
/// `span` same-set filler lines so the speculatively received line is
/// evicted before it can be validated.
///
/// Filler lines are `sets, 2*sets, …, span*sets` — they share cache set 0
/// with the counter line in a `sets`-set L1, so a `span` at or above the
/// associativity forces mid-transaction eviction of line 0. Filler lines
/// are only read (they stay zero). Invariant: the single counter at word 0
/// ends at `threads * iters`.
///
/// # Panics
///
/// Panics if `iters`, `sets` or `span` is zero.
#[must_use]
pub fn capacity_prober(iters: u64, sets: u64, span: u64) -> Kernel {
    assert!(
        iters > 0 && sets > 0 && span > 0,
        "degenerate capacity_prober kernel"
    );
    let (i, n, addr, v, j, k) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4), Reg(5));
    let mut b = ProgramBuilder::new();
    b.imm(i, 0).imm(n, iters);
    let outer = b.label();
    b.bind(outer);
    b.tx_begin();
    b.imm(addr, 0);
    emit_incr(&mut b, addr, v);
    b.imm(j, 1);
    b.imm(k, span + 1);
    let sweep = b.label();
    b.bind(sweep);
    b.imm(addr, line_word(sets));
    b.mul(addr, addr, j);
    b.load(v, addr);
    b.addi(j, j, 1);
    b.blt(j, k, sweep);
    b.tx_end();
    b.pause(20);
    b.addi(i, i, 1);
    b.blt(i, n, outer);
    b.halt();
    Kernel {
        program: b.build(),
        counters: vec![0],
        per_thread: iters,
    }
}

/// Late-commit window: increment one contended counter, then spin `spin`
/// cycles *inside* the transaction before committing.
///
/// The long pre-commit window means consumers of the forwarded counter
/// line sit on unvalidated speculative data for a long time, stressing
/// validation pacing and commit-order decisions. Invariant: the counter at
/// word 0 ends at `threads * iters`.
///
/// # Panics
///
/// Panics if `iters` or `spin` is zero.
#[must_use]
pub fn late_commit(iters: u64, spin: u64) -> Kernel {
    assert!(iters > 0 && spin > 0, "degenerate late_commit kernel");
    let (i, n, addr, v) = (Reg(0), Reg(1), Reg(2), Reg(3));
    let mut b = ProgramBuilder::new();
    b.imm(i, 0).imm(n, iters);
    b.imm(addr, 0);
    let outer = b.label();
    b.bind(outer);
    b.tx_begin();
    emit_incr(&mut b, addr, v);
    b.pause(spin);
    b.tx_end();
    b.pause(10);
    b.addi(i, i, 1);
    b.blt(i, n, outer);
    b.halt();
    Kernel {
        program: b.build(),
        counters: vec![0],
        per_thread: iters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::{Vm, VmEvent};
    use std::collections::HashMap;

    /// Runs a kernel single-threaded on a flat memory (no HTM, no timing)
    /// and returns the final memory image.
    fn interpret(k: &Kernel, seed: u64) -> HashMap<u64, u64> {
        let mut mem = HashMap::new();
        let mut vm = Vm::new(k.program.clone(), seed);
        for _ in 0..1_000_000u64 {
            match vm.step() {
                VmEvent::Compute(_) | VmEvent::TxBegin | VmEvent::TxEnd => {}
                VmEvent::Load(a) => vm.complete_load(*mem.get(&a.0).unwrap_or(&0)),
                VmEvent::Store(a, v) => {
                    mem.insert(a.0, v);
                    vm.complete_store();
                }
                VmEvent::Halted => return mem,
            }
        }
        panic!("kernel did not halt");
    }

    fn check_invariant(k: &Kernel, seed: u64) {
        let mem = interpret(k, seed);
        let sum: u64 = k.counters.iter().map(|a| mem.get(a).unwrap_or(&0)).sum();
        assert_eq!(sum, k.per_thread, "single-thread sum invariant");
    }

    #[test]
    fn torture_invariant_holds_single_threaded() {
        check_invariant(&torture(7, 3, 4), 11);
        check_invariant(&torture(1, 1, 1), 0);
    }

    #[test]
    fn chain_ladder_touches_every_rung() {
        let k = chain_ladder(5, 3);
        let mem = interpret(&k, 1);
        for l in 0..3u64 {
            assert_eq!(mem.get(&(l * 8)), Some(&5));
        }
        check_invariant(&k, 1);
    }

    #[test]
    fn vsb_filler_matches_ladder_shape() {
        let k = vsb_filler(2, 6);
        assert_eq!(k.counters.len(), 6);
        assert_eq!(k.per_thread, 12);
        check_invariant(&k, 3);
    }

    #[test]
    fn capacity_prober_fillers_stay_zero() {
        let k = capacity_prober(4, 8, 3);
        let mem = interpret(&k, 2);
        assert_eq!(mem.get(&0), Some(&4));
        // filler lines 8, 16, 24 are read-only
        for l in [8u64, 16, 24] {
            assert!(!mem.contains_key(&(l * 8)));
        }
        check_invariant(&k, 2);
    }

    #[test]
    fn observer_increments_once_per_tx() {
        let k = observer(6, 3);
        assert_eq!(k.per_thread, 6);
        assert_eq!(k.counters, vec![0, 8, 16]);
        check_invariant(&k, 5);
    }

    #[test]
    fn late_commit_counts() {
        check_invariant(&late_commit(9, 50), 4);
    }

    #[test]
    fn kernels_are_deterministic() {
        let a = torture(5, 2, 4);
        let b = torture(5, 2, 4);
        assert_eq!(interpret(&a, 42), interpret(&b, 42));
    }
}
