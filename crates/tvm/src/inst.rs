//! The TxVM instruction set.

use std::fmt;
use std::sync::Arc;

/// A register index. TxVM has 32 general-purpose 64-bit registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(pub u8);

/// Number of registers per VM.
pub const NUM_REGS: usize = 32;

impl Reg {
    pub(crate) fn idx(self) -> usize {
        let i = self.0 as usize;
        assert!(i < NUM_REGS, "register r{i} out of range");
        i
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One TxVM instruction.
///
/// ALU and control instructions cost one core cycle each; `Load`/`Store`
/// cost whatever the memory hierarchy charges; `Pause` charges an explicit
/// number of cycles (modelling non-memory work between accesses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inst {
    /// `dst = imm`
    Imm(Reg, u64),
    /// `dst = src`
    Mov(Reg, Reg),
    /// `dst = a + b` (wrapping)
    Add(Reg, Reg, Reg),
    /// `dst = a + imm` (wrapping)
    AddI(Reg, Reg, u64),
    /// `dst = a - b` (wrapping)
    Sub(Reg, Reg, Reg),
    /// `dst = a * b` (wrapping)
    Mul(Reg, Reg, Reg),
    /// `dst = a * imm` (wrapping)
    MulI(Reg, Reg, u64),
    /// `dst = a / imm` — `imm` must be non-zero (checked at build time)
    DivI(Reg, Reg, u64),
    /// `dst = a % imm` — `imm` must be non-zero (checked at build time)
    RemI(Reg, Reg, u64),
    /// `dst = a & imm`
    AndI(Reg, Reg, u64),
    /// `dst = a ^ b`
    Xor(Reg, Reg, Reg),
    /// `dst = a << imm`
    ShlI(Reg, Reg, u32),
    /// `dst = a >> imm`
    ShrI(Reg, Reg, u32),
    /// `dst = uniform random in [0, bound_reg)` from the VM's own stream
    Rand(Reg, Reg),
    /// Unconditional jump to instruction index
    Jmp(usize),
    /// Jump if `a == b`
    Beq(Reg, Reg, usize),
    /// Jump if `a != b`
    Bne(Reg, Reg, usize),
    /// Jump if `a < b` (unsigned)
    Blt(Reg, Reg, usize),
    /// Jump if `a >= b` (unsigned)
    Bge(Reg, Reg, usize),
    /// `dst = mem[addr_reg]` — pauses the VM at the memory system
    Load(Reg, Reg),
    /// `mem[addr_reg] = val_reg` — pauses the VM at the memory system
    Store(Reg, Reg),
    /// Begin a transaction (handled by the HTM engine)
    TxBegin,
    /// Commit the current transaction (handled by the HTM engine)
    TxEnd,
    /// Spin for `cycles` of non-memory work
    Pause(u64),
    /// Terminate the thread
    Halt,
}

/// An immutable, shareable TxVM program.
///
/// Programs are produced by [`crate::ProgramBuilder`] and shared between
/// the VMs of all threads running the same kernel.
#[derive(Debug, Clone)]
pub struct Program {
    insts: Arc<[Inst]>,
}

impl Program {
    pub(crate) fn from_insts(insts: Vec<Inst>) -> Program {
        Program {
            insts: insts.into(),
        }
    }

    /// Instruction at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is past the end — the builder always terminates
    /// programs with `Halt`, so this indicates a builder bypass.
    #[must_use]
    pub fn fetch(&self, pc: usize) -> Inst {
        self.insts[pc]
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// `true` for a program with no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// All instructions, for inspection.
    #[must_use]
    pub fn instructions(&self) -> &[Inst] {
        &self.insts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_index_checked() {
        assert_eq!(Reg(31).idx(), 31);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_out_of_range_panics() {
        let _ = Reg(32).idx();
    }

    #[test]
    fn program_fetch() {
        let p = Program::from_insts(vec![Inst::Halt]);
        assert_eq!(p.fetch(0), Inst::Halt);
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
    }
}
