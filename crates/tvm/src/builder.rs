//! Assembler / builder DSL for TxVM programs.
//!
//! Labels are forward-referenceable: create them with
//! [`ProgramBuilder::label`], jump to them before or after binding them
//! with [`ProgramBuilder::bind`]. [`ProgramBuilder::build`] resolves all
//! fixups and verifies every label was bound.

use crate::inst::{Inst, Program, Reg};

/// A branch target, possibly not yet bound to a position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Incremental TxVM program assembler.
///
/// # Example
///
/// ```
/// use chats_tvm::{ProgramBuilder, Reg};
///
/// // for i in 0..10 { mem[i] = i }
/// let mut b = ProgramBuilder::new();
/// let (i, ten) = (Reg(0), Reg(1));
/// b.imm(i, 0).imm(ten, 10);
/// let top = b.label();
/// b.bind(top);
/// b.store(i, i);
/// b.addi(i, i, 1);
/// b.blt(i, ten, top);
/// b.halt();
/// let prog = b.build();
/// assert!(prog.len() > 5);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    insts: Vec<Inst>,
    labels: Vec<Option<usize>>,
    fixups: Vec<(usize, Label)>,
}

impl ProgramBuilder {
    /// A fresh, empty builder.
    #[must_use]
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Creates a new, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.insts.len());
    }

    fn push(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    fn push_branch(&mut self, inst: Inst, target: Label) -> &mut Self {
        self.fixups.push((self.insts.len(), target));
        self.insts.push(inst);
        self
    }

    /// `dst = imm`
    pub fn imm(&mut self, dst: Reg, v: u64) -> &mut Self {
        self.push(Inst::Imm(dst, v))
    }

    /// `dst = src`
    pub fn mov(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.push(Inst::Mov(dst, src))
    }

    /// `dst = a + b`
    pub fn add(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.push(Inst::Add(dst, a, b))
    }

    /// `dst = a + imm`
    pub fn addi(&mut self, dst: Reg, a: Reg, v: u64) -> &mut Self {
        self.push(Inst::AddI(dst, a, v))
    }

    /// `dst = a - b`
    pub fn sub(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.push(Inst::Sub(dst, a, b))
    }

    /// `dst = a * b`
    pub fn mul(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.push(Inst::Mul(dst, a, b))
    }

    /// `dst = a * imm`
    pub fn muli(&mut self, dst: Reg, a: Reg, v: u64) -> &mut Self {
        self.push(Inst::MulI(dst, a, v))
    }

    /// `dst = a / imm`
    ///
    /// # Panics
    ///
    /// Panics if `v == 0`.
    pub fn divi(&mut self, dst: Reg, a: Reg, v: u64) -> &mut Self {
        assert!(v != 0, "division by zero immediate");
        self.push(Inst::DivI(dst, a, v))
    }

    /// `dst = a % imm`
    ///
    /// # Panics
    ///
    /// Panics if `v == 0`.
    pub fn remi(&mut self, dst: Reg, a: Reg, v: u64) -> &mut Self {
        assert!(v != 0, "remainder by zero immediate");
        self.push(Inst::RemI(dst, a, v))
    }

    /// `dst = a & imm`
    pub fn andi(&mut self, dst: Reg, a: Reg, v: u64) -> &mut Self {
        self.push(Inst::AndI(dst, a, v))
    }

    /// `dst = a ^ b`
    pub fn xor(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.push(Inst::Xor(dst, a, b))
    }

    /// `dst = a << imm`
    pub fn shli(&mut self, dst: Reg, a: Reg, v: u32) -> &mut Self {
        self.push(Inst::ShlI(dst, a, v))
    }

    /// `dst = a >> imm`
    pub fn shri(&mut self, dst: Reg, a: Reg, v: u32) -> &mut Self {
        self.push(Inst::ShrI(dst, a, v))
    }

    /// `dst = random below bound_reg`
    pub fn rand(&mut self, dst: Reg, bound: Reg) -> &mut Self {
        self.push(Inst::Rand(dst, bound))
    }

    /// Unconditional jump.
    pub fn jmp(&mut self, target: Label) -> &mut Self {
        self.push_branch(Inst::Jmp(usize::MAX), target)
    }

    /// Branch if equal.
    pub fn beq(&mut self, a: Reg, b: Reg, target: Label) -> &mut Self {
        self.push_branch(Inst::Beq(a, b, usize::MAX), target)
    }

    /// Branch if not equal.
    pub fn bne(&mut self, a: Reg, b: Reg, target: Label) -> &mut Self {
        self.push_branch(Inst::Bne(a, b, usize::MAX), target)
    }

    /// Branch if less than (unsigned).
    pub fn blt(&mut self, a: Reg, b: Reg, target: Label) -> &mut Self {
        self.push_branch(Inst::Blt(a, b, usize::MAX), target)
    }

    /// Branch if greater or equal (unsigned).
    pub fn bge(&mut self, a: Reg, b: Reg, target: Label) -> &mut Self {
        self.push_branch(Inst::Bge(a, b, usize::MAX), target)
    }

    /// `dst = mem[addr]`
    pub fn load(&mut self, dst: Reg, addr: Reg) -> &mut Self {
        self.push(Inst::Load(dst, addr))
    }

    /// `mem[addr] = val`
    pub fn store(&mut self, addr: Reg, val: Reg) -> &mut Self {
        self.push(Inst::Store(addr, val))
    }

    /// Transaction begin marker.
    pub fn tx_begin(&mut self) -> &mut Self {
        self.push(Inst::TxBegin)
    }

    /// Transaction end (commit) marker.
    pub fn tx_end(&mut self) -> &mut Self {
        self.push(Inst::TxEnd)
    }

    /// Non-memory work of `cycles` cycles.
    pub fn pause(&mut self, cycles: u64) -> &mut Self {
        self.push(Inst::Pause(cycles))
    }

    /// Thread end.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Inst::Halt)
    }

    /// Current instruction count (useful for size assertions in tests).
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// `true` when no instructions have been emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Resolves labels and produces the immutable [`Program`]. A trailing
    /// `Halt` is appended if the program does not end with one.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound.
    #[must_use]
    pub fn build(mut self) -> Program {
        if !matches!(self.insts.last(), Some(Inst::Halt)) {
            self.insts.push(Inst::Halt);
        }
        for (pos, label) in self.fixups {
            let target = self.labels[label.0]
                .unwrap_or_else(|| panic!("label {label:?} referenced but never bound"));
            self.insts[pos] = match self.insts[pos] {
                Inst::Jmp(_) => Inst::Jmp(target),
                Inst::Beq(a, b, _) => Inst::Beq(a, b, target),
                Inst::Bne(a, b, _) => Inst::Bne(a, b, target),
                Inst::Blt(a, b, _) => Inst::Blt(a, b, target),
                Inst::Bge(a, b, _) => Inst::Bge(a, b, target),
                other => unreachable!("fixup on non-branch {other:?}"),
            };
        }
        Program::from_insts(self.insts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_label_resolves() {
        let mut b = ProgramBuilder::new();
        let end = b.label();
        b.jmp(end);
        b.imm(Reg(0), 1); // skipped
        b.bind(end);
        b.halt();
        let p = b.build();
        assert_eq!(p.fetch(0), Inst::Jmp(2));
    }

    #[test]
    fn backward_label_resolves() {
        let mut b = ProgramBuilder::new();
        let top = b.label();
        b.bind(top);
        b.imm(Reg(0), 1);
        b.jmp(top);
        let p = b.build();
        assert_eq!(p.fetch(1), Inst::Jmp(0));
    }

    #[test]
    fn halt_is_appended() {
        let mut b = ProgramBuilder::new();
        b.imm(Reg(0), 1);
        let p = b.build();
        assert_eq!(p.fetch(p.len() - 1), Inst::Halt);
    }

    #[test]
    fn explicit_halt_not_duplicated() {
        let mut b = ProgramBuilder::new();
        b.halt();
        assert_eq!(b.build().len(), 1);
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.jmp(l);
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_zero_rejected_at_build() {
        let mut b = ProgramBuilder::new();
        b.divi(Reg(0), Reg(0), 0);
    }

    #[test]
    fn all_branch_kinds_fix_up() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.bind(l);
        b.beq(Reg(0), Reg(1), l);
        b.bne(Reg(0), Reg(1), l);
        b.blt(Reg(0), Reg(1), l);
        b.bge(Reg(0), Reg(1), l);
        let p = b.build();
        assert_eq!(p.fetch(0), Inst::Beq(Reg(0), Reg(1), 0));
        assert_eq!(p.fetch(1), Inst::Bne(Reg(0), Reg(1), 0));
        assert_eq!(p.fetch(2), Inst::Blt(Reg(0), Reg(1), 0));
        assert_eq!(p.fetch(3), Inst::Bge(Reg(0), Reg(1), 0));
    }
}
