//! Property tests for the TxVM: determinism, rollback fidelity and
//! bounded execution of arbitrary straight-line programs.

use chats_mem::Addr;
use chats_tvm::{Inst, Program, ProgramBuilder, Reg, Vm, VmEvent};
use proptest::prelude::*;
use std::collections::HashMap;

/// Arbitrary straight-line ALU instructions over the first 8 registers
/// (no branches — termination is structural).
fn alu_inst() -> impl Strategy<Value = Inst> {
    let r = || (0u8..8).prop_map(Reg);
    prop_oneof![
        (r(), any::<u64>()).prop_map(|(d, v)| Inst::Imm(d, v)),
        (r(), r()).prop_map(|(d, s)| Inst::Mov(d, s)),
        (r(), r(), r()).prop_map(|(d, a, b)| Inst::Add(d, a, b)),
        (r(), r(), r()).prop_map(|(d, a, b)| Inst::Sub(d, a, b)),
        (r(), r(), r()).prop_map(|(d, a, b)| Inst::Mul(d, a, b)),
        (r(), r(), 1u64..1000).prop_map(|(d, a, v)| Inst::DivI(d, a, v)),
        (r(), r(), 1u64..1000).prop_map(|(d, a, v)| Inst::RemI(d, a, v)),
        (r(), r(), any::<u64>()).prop_map(|(d, a, v)| Inst::AndI(d, a, v)),
        (r(), r(), r()).prop_map(|(d, a, b)| Inst::Xor(d, a, b)),
        (r(), r(), 0u32..64).prop_map(|(d, a, v)| Inst::ShlI(d, a, v)),
        (r(), r(), 0u32..64).prop_map(|(d, a, v)| Inst::ShrI(d, a, v)),
    ]
}

fn program_from(insts: &[Inst]) -> Program {
    let mut b = ProgramBuilder::new();
    for &i in insts {
        match i {
            Inst::Imm(d, v) => {
                b.imm(d, v);
            }
            Inst::Mov(d, s) => {
                b.mov(d, s);
            }
            Inst::Add(d, x, y) => {
                b.add(d, x, y);
            }
            Inst::Sub(d, x, y) => {
                b.sub(d, x, y);
            }
            Inst::Mul(d, x, y) => {
                b.mul(d, x, y);
            }
            Inst::DivI(d, x, v) => {
                b.divi(d, x, v);
            }
            Inst::RemI(d, x, v) => {
                b.remi(d, x, v);
            }
            Inst::AndI(d, x, v) => {
                b.andi(d, x, v);
            }
            Inst::Xor(d, x, y) => {
                b.xor(d, x, y);
            }
            Inst::ShlI(d, x, v) => {
                b.shli(d, x, v);
            }
            Inst::ShrI(d, x, v) => {
                b.shri(d, x, v);
            }
            _ => unreachable!("alu_inst only yields ALU instructions"),
        }
    }
    b.halt();
    b.build()
}

fn run_to_halt(vm: &mut Vm, mem: &mut HashMap<u64, u64>) {
    for _ in 0..100_000 {
        match vm.step() {
            VmEvent::Compute(_) | VmEvent::TxBegin | VmEvent::TxEnd => {}
            VmEvent::Load(a) => {
                let v = mem.get(&a.0).copied().unwrap_or(0);
                vm.complete_load(v);
            }
            VmEvent::Store(a, v) => {
                mem.insert(a.0, v);
                vm.complete_store();
            }
            VmEvent::Halted => return,
        }
    }
    panic!("straight-line program failed to halt");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Same program + same seed => identical final registers.
    #[test]
    fn execution_is_deterministic(insts in proptest::collection::vec(alu_inst(), 1..100), seed in any::<u64>()) {
        let p = program_from(&insts);
        let mut a = Vm::new(p.clone(), seed);
        let mut b = Vm::new(p, seed);
        run_to_halt(&mut a, &mut HashMap::new());
        run_to_halt(&mut b, &mut HashMap::new());
        for r in 0..8u8 {
            prop_assert_eq!(a.reg(Reg(r)), b.reg(Reg(r)));
        }
        prop_assert_eq!(a.retired(), b.retired());
    }

    /// Snapshot + restore replays to an identical architectural state
    /// (the property transactional rollback depends on).
    #[test]
    fn rollback_replays_identically(
        prefix in proptest::collection::vec(alu_inst(), 0..30),
        body in proptest::collection::vec(alu_inst(), 1..50),
    ) {
        let mut all = prefix.clone();
        all.extend(body.iter().copied());
        let p = program_from(&all);
        let mut vm = Vm::new(p, 7);
        for _ in 0..prefix.len() {
            prop_assert!(matches!(vm.step(), VmEvent::Compute(_)));
        }
        let snap = vm.snapshot();
        // Run the body once.
        run_to_halt(&mut vm, &mut HashMap::new());
        let first: Vec<u64> = (0..8).map(|r| vm.reg(Reg(r))).collect();
        // Roll back and run it again.
        vm.restore(&snap);
        run_to_halt(&mut vm, &mut HashMap::new());
        let second: Vec<u64> = (0..8).map(|r| vm.reg(Reg(r))).collect();
        prop_assert_eq!(first, second);
    }

    /// Memory round trip: stores to arbitrary addresses are read back.
    #[test]
    fn store_load_round_trip(addr in 0u64..1_000_000, value in any::<u64>()) {
        let (a, v, out) = (Reg(0), Reg(1), Reg(2));
        let mut b = ProgramBuilder::new();
        b.imm(a, addr).imm(v, value);
        b.store(a, v);
        b.load(out, a);
        b.halt();
        let mut vm = Vm::new(b.build(), 0);
        let mut mem = HashMap::new();
        run_to_halt(&mut vm, &mut mem);
        prop_assert_eq!(vm.reg(out), value);
        prop_assert_eq!(mem.get(&Addr(addr).0).copied(), Some(value));
    }
}
