//! Sparse integer histograms.
//!
//! The observability layer folds traces into distributions — PiC depths,
//! chain lengths, VSB occupancies — whose domains are tiny but unknown in
//! advance. [`Histogram`] keeps them sparsely, renders them compactly, and
//! answers the summary questions (total mass, mean, maximum) the reports
//! print.

use std::collections::BTreeMap;
use std::fmt;

/// A sparse histogram over `u64` bins.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: BTreeMap<u64, u64>,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Adds one observation of `value`.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Adds `n` observations of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n > 0 {
            *self.counts.entry(value).or_insert(0) += n;
        }
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Total number of observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Mean observed value, or `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let sum: u64 = self.counts.iter().map(|(v, n)| v * n).sum();
        Some(sum as f64 / total as f64)
    }

    /// Largest observed value, or `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        self.counts.keys().next_back().copied()
    }

    /// Iterates `(value, count)` pairs in ascending value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&v, &n)| (v, n))
    }
}

impl FromIterator<(u64, u64)> for Histogram {
    fn from_iter<I: IntoIterator<Item = (u64, u64)>>(iter: I) -> Histogram {
        let mut h = Histogram::new();
        for (v, n) in iter {
            h.record_n(v, n);
        }
        h
    }
}

/// Renders as `value:count` pairs separated by two spaces, e.g. `0:6  1:7`,
/// or `(empty)` when nothing was recorded.
impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.counts.is_empty() {
            return write!(f, "(empty)");
        }
        for (i, (v, n)) in self.counts.iter().enumerate() {
            if i > 0 {
                write!(f, "  ")?;
            }
            write!(f, "{v}:{n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarizes() {
        let mut h = Histogram::new();
        h.record(1);
        h.record(1);
        h.record_n(4, 3);
        h.record_n(9, 0); // zero-count entries are not materialized
        assert_eq!(h.total(), 5);
        assert_eq!(h.max(), Some(4));
        assert_eq!(h.mean(), Some((1 + 1 + 4 * 3) as f64 / 5.0));
        assert_eq!(h.iter().collect::<Vec<_>>(), vec![(1, 2), (4, 3)]);
    }

    #[test]
    fn display_is_compact_and_sorted() {
        let h: Histogram = [(3, 1), (0, 6), (1, 7)].into_iter().collect();
        assert_eq!(h.to_string(), "0:6  1:7  3:1");
        assert_eq!(Histogram::new().to_string(), "(empty)");
        assert_eq!(Histogram::new().mean(), None);
        assert_eq!(Histogram::new().max(), None);
    }
}
