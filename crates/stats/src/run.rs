//! Per-run counters.

use chats_core::AbortCause;
use std::collections::BTreeMap;

/// Commit/abort split for a class of transactions (Figure 6 bars).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TxOutcomeCounts {
    /// Transactions in this class that eventually committed.
    pub committed: u64,
    /// Transactions in this class whose attempt aborted.
    pub aborted: u64,
}

impl TxOutcomeCounts {
    /// Total transactions in the class.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.committed + self.aborted
    }
}

/// All counters produced by one simulation run.
///
/// # Example
///
/// ```
/// use chats_stats::RunStats;
/// use chats_core::AbortCause;
///
/// let mut s = RunStats::default();
/// s.record_abort(AbortCause::Conflict);
/// s.record_abort(AbortCause::Capacity);
/// assert_eq!(s.total_aborts(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RunStats {
    /// Total simulated cycles until every thread halted.
    pub cycles: u64,
    /// Committed transactions.
    pub commits: u64,
    /// Transaction attempts started (commits + aborts).
    pub tx_attempts: u64,
    /// Aborts split by cause.
    pub aborts: BTreeMap<String, u64>,
    /// Conflicts detected at owners (each conflicting probe counts once).
    pub conflicts: u64,
    /// `SpecResp` messages sent (speculative forwardings).
    pub forwardings: u64,
    /// Outcome split of transaction attempts that *forwarded* data.
    pub forwarder_outcomes: TxOutcomeCounts,
    /// Outcome split of transaction attempts that *conflicted* (either side).
    pub conflicted_outcomes: TxOutcomeCounts,
    /// Validation probes issued.
    pub validation_attempts: u64,
    /// Validations that completed successfully (line left the VSB).
    pub validations_ok: u64,
    /// Total flits injected into the interconnect.
    pub flits: u64,
    /// Control messages injected.
    pub control_messages: u64,
    /// Data messages injected.
    pub data_messages: u64,
    /// Fallback-lock (or, in power systems, forced-token) acquisitions.
    pub fallback_acquisitions: u64,
    /// Power-token grants.
    pub power_grants: u64,
    /// Nack/stall responses observed by requesters.
    pub nacks: u64,
    /// Instructions retired across all threads.
    pub instructions: u64,
    /// Discrete events dispatched by the simulator's event loop. A
    /// simulator-engineering metric (events and wall time give the
    /// events/sec throughput the perf baseline tracks), but deterministic
    /// like every other counter: two runs of the same seed dispatch the
    /// same events.
    pub events: u64,
    /// Deepest chain position observed, as the distance of any PiC from
    /// its initial (middle-of-range) value. Evidence for the paper's
    /// claim that a 5-bit PiC register suffices in practice.
    pub max_chain_depth: u32,
    /// Forwardings per chain depth at the moment the edge was created
    /// (depth 0 = chain of two freshly linked transactions).
    pub chain_depth_hist: BTreeMap<u32, u64>,
}

impl chats_snap::Snap for TxOutcomeCounts {
    fn save(&self, w: &mut chats_snap::SnapWriter) {
        w.u64(self.committed);
        w.u64(self.aborted);
    }
    fn load(r: &mut chats_snap::SnapReader<'_>) -> Result<Self, chats_snap::SnapError> {
        Ok(TxOutcomeCounts {
            committed: r.u64()?,
            aborted: r.u64()?,
        })
    }
}

impl chats_snap::Snap for RunStats {
    fn save(&self, w: &mut chats_snap::SnapWriter) {
        w.u64(self.cycles);
        w.u64(self.commits);
        w.u64(self.tx_attempts);
        self.aborts.save(w);
        w.u64(self.conflicts);
        w.u64(self.forwardings);
        self.forwarder_outcomes.save(w);
        self.conflicted_outcomes.save(w);
        w.u64(self.validation_attempts);
        w.u64(self.validations_ok);
        w.u64(self.flits);
        w.u64(self.control_messages);
        w.u64(self.data_messages);
        w.u64(self.fallback_acquisitions);
        w.u64(self.power_grants);
        w.u64(self.nacks);
        w.u64(self.instructions);
        w.u64(self.events);
        self.max_chain_depth.save(w);
        self.chain_depth_hist.save(w);
    }
    fn load(r: &mut chats_snap::SnapReader<'_>) -> Result<Self, chats_snap::SnapError> {
        Ok(RunStats {
            cycles: r.u64()?,
            commits: r.u64()?,
            tx_attempts: r.u64()?,
            aborts: chats_snap::Snap::load(r)?,
            conflicts: r.u64()?,
            forwardings: r.u64()?,
            forwarder_outcomes: chats_snap::Snap::load(r)?,
            conflicted_outcomes: chats_snap::Snap::load(r)?,
            validation_attempts: r.u64()?,
            validations_ok: r.u64()?,
            flits: r.u64()?,
            control_messages: r.u64()?,
            data_messages: r.u64()?,
            fallback_acquisitions: r.u64()?,
            power_grants: r.u64()?,
            nacks: r.u64()?,
            instructions: r.u64()?,
            events: r.u64()?,
            max_chain_depth: chats_snap::Snap::load(r)?,
            chain_depth_hist: chats_snap::Snap::load(r)?,
        })
    }
}

impl RunStats {
    /// Adds one abort with its cause.
    pub fn record_abort(&mut self, cause: AbortCause) {
        *self.aborts.entry(cause.label().to_string()).or_insert(0) += 1;
    }

    /// Records a forwarding whose consumer ended `depth` positions away
    /// from the initial PiC value.
    pub fn record_chain_depth(&mut self, depth: u32) {
        self.max_chain_depth = self.max_chain_depth.max(depth);
        *self.chain_depth_hist.entry(depth).or_insert(0) += 1;
    }

    /// Aborts attributed to `cause` so far.
    #[must_use]
    pub fn aborts_by(&self, cause: AbortCause) -> u64 {
        self.aborts.get(cause.label()).copied().unwrap_or(0)
    }

    /// Total aborts across causes.
    #[must_use]
    pub fn total_aborts(&self) -> u64 {
        self.aborts.values().sum()
    }

    /// Commit ratio over all attempts, in `[0, 1]`; `1.0` when no attempts
    /// were made.
    #[must_use]
    pub fn commit_ratio(&self) -> f64 {
        if self.tx_attempts == 0 {
            1.0
        } else {
            self.commits as f64 / self.tx_attempts as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_recording() {
        let mut s = RunStats::default();
        s.record_abort(AbortCause::Conflict);
        s.record_abort(AbortCause::Conflict);
        s.record_abort(AbortCause::ValidationMismatch);
        assert_eq!(s.aborts_by(AbortCause::Conflict), 2);
        assert_eq!(s.aborts_by(AbortCause::ValidationMismatch), 1);
        assert_eq!(s.aborts_by(AbortCause::Capacity), 0);
        assert_eq!(s.total_aborts(), 3);
    }

    #[test]
    fn commit_ratio_bounds() {
        let mut s = RunStats::default();
        assert_eq!(s.commit_ratio(), 1.0);
        s.tx_attempts = 4;
        s.commits = 3;
        assert!((s.commit_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn outcome_counts_total() {
        let t = TxOutcomeCounts {
            committed: 3,
            aborted: 2,
        };
        assert_eq!(t.total(), 5);
    }

    #[test]
    fn chain_depth_tracks_max_and_histogram() {
        let mut s = RunStats::default();
        s.record_chain_depth(1);
        s.record_chain_depth(3);
        s.record_chain_depth(1);
        assert_eq!(s.max_chain_depth, 3);
        assert_eq!(s.chain_depth_hist.get(&1), Some(&2));
        assert_eq!(s.chain_depth_hist.get(&3), Some(&1));
        assert_eq!(s.chain_depth_hist.get(&2), None);
    }
}
