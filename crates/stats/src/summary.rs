//! Normalization and mean helpers for figure generation.
//!
//! All of the paper's performance figures are *normalized to the baseline*;
//! these helpers implement that normalization plus the arithmetic and
//! geometric means the paper reports (microbenchmarks excluded from means —
//! that selection is the harness's job).

/// Divides each value by its corresponding baseline value.
///
/// # Panics
///
/// Panics if lengths differ or any baseline value is zero.
///
/// # Example
///
/// ```
/// use chats_stats::normalize;
/// assert_eq!(normalize(&[50.0, 200.0], &[100.0, 100.0]), vec![0.5, 2.0]);
/// ```
#[must_use]
pub fn normalize(values: &[f64], baseline: &[f64]) -> Vec<f64> {
    assert_eq!(values.len(), baseline.len(), "length mismatch");
    values
        .iter()
        .zip(baseline)
        .map(|(v, b)| {
            assert!(*b != 0.0, "baseline value is zero");
            v / b
        })
        .collect()
}

/// Normalizes one value to a baseline.
///
/// # Panics
///
/// Panics if `baseline` is zero.
#[must_use]
pub fn normalize_to(value: f64, baseline: f64) -> f64 {
    assert!(baseline != 0.0, "baseline value is zero");
    value / baseline
}

/// Arithmetic mean; `0.0` for an empty slice.
#[must_use]
pub fn amean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Geometric mean; `0.0` for an empty slice.
///
/// # Panics
///
/// Panics if any value is non-positive.
#[must_use]
pub fn gmean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|v| {
            assert!(*v > 0.0, "geometric mean needs positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_basic() {
        let n = normalize(&[10.0, 30.0, 90.0], &[10.0, 10.0, 30.0]);
        assert_eq!(n, vec![1.0, 3.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn normalize_length_mismatch_panics() {
        let _ = normalize(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "zero")]
    fn normalize_zero_baseline_panics() {
        let _ = normalize_to(1.0, 0.0);
    }

    #[test]
    fn amean_basic() {
        assert_eq!(amean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(amean(&[]), 0.0);
    }

    #[test]
    fn gmean_basic() {
        assert!((gmean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((gmean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(gmean(&[]), 0.0);
    }

    #[test]
    fn gmean_le_amean() {
        let v = [0.5, 1.5, 2.5, 4.0];
        assert!(gmean(&v) <= amean(&v));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gmean_rejects_zero() {
        let _ = gmean(&[1.0, 0.0]);
    }
}
