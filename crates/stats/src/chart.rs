//! Horizontal ASCII bar charts for figure output.
//!
//! The paper's figures are bar charts; the `figures` binary can render its
//! normalized series as bars so shapes are visible directly in a terminal.

use std::fmt;

/// A horizontal bar chart of labelled values.
///
/// # Example
///
/// ```
/// use chats_stats::BarChart;
/// let mut c = BarChart::new("normalized time", 20);
/// c.bar("baseline", 1.0);
/// c.bar("CHATS", 0.5);
/// let s = c.to_string();
/// assert!(s.contains("CHATS"));
/// assert!(s.contains('#'));
/// ```
#[derive(Debug, Clone)]
pub struct BarChart {
    title: String,
    width: usize,
    bars: Vec<(String, f64)>,
}

impl BarChart {
    /// A chart titled `title` whose largest bar spans `width` characters.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    #[must_use]
    pub fn new(title: &str, width: usize) -> BarChart {
        assert!(width > 0, "chart width must be positive");
        BarChart {
            title: title.to_string(),
            width,
            bars: Vec::new(),
        }
    }

    /// Appends a labelled bar.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or not finite.
    pub fn bar(&mut self, label: &str, value: f64) -> &mut BarChart {
        assert!(
            value.is_finite() && value >= 0.0,
            "bar value must be a non-negative finite number, got {value}"
        );
        self.bars.push((label.to_string(), value));
        self
    }

    /// Number of bars.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bars.len()
    }

    /// `true` when the chart has no bars.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bars.is_empty()
    }
}

impl fmt::Display for BarChart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        let max = self
            .bars
            .iter()
            .map(|(_, v)| *v)
            .fold(0.0_f64, f64::max)
            .max(f64::MIN_POSITIVE);
        let label_w = self.bars.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        for (label, value) in &self.bars {
            let n = ((value / max) * self.width as f64).round() as usize;
            writeln!(
                f,
                "{label:<label_w$}  {:<width$}  {value:.3}",
                "#".repeat(n),
                width = self.width
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longest_bar_fills_width() {
        let mut c = BarChart::new("t", 10);
        c.bar("a", 2.0).bar("b", 1.0);
        let s = c.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[1].matches('#').count(), 10);
        assert_eq!(lines[2].matches('#').count(), 5);
    }

    #[test]
    fn zero_values_render_empty_bars() {
        let mut c = BarChart::new("t", 8);
        c.bar("z", 0.0);
        assert_eq!(c.to_string().matches('#').count(), 0);
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }

    #[test]
    fn labels_align() {
        let mut c = BarChart::new("t", 4);
        c.bar("x", 1.0).bar("longer", 1.0);
        let s = c.to_string();
        for line in s.lines().skip(1) {
            assert!(line.contains("####"));
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_value_panics() {
        BarChart::new("t", 4).bar("x", -1.0);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        let _ = BarChart::new("t", 0);
    }
}
