//! Plain-text aligned table rendering for the figure harness.

use std::fmt;

/// A simple column-aligned ASCII table.
///
/// # Example
///
/// ```
/// use chats_stats::Table;
/// let mut t = Table::new(vec!["bench".into(), "CHATS".into()]);
/// t.row(vec!["kmeans-h".into(), "0.42".into()]);
/// let s = t.to_string();
/// assert!(s.contains("kmeans-h"));
/// assert!(s.contains("CHATS"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    #[must_use]
    pub fn new(headers: Vec<String>) -> Table {
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Convenience: appends a row of a label followed by formatted floats.
    pub fn row_f64(&mut self, label: &str, values: &[f64]) -> &mut Table {
        let mut cells = vec![label.to_string()];
        cells.extend(values.iter().map(|v| format!("{v:.3}")));
        self.row(cells)
    }

    /// Renders the table as CSV (header row first); cells containing
    /// commas or quotes are quoted.
    #[must_use]
    pub fn to_csv(&self) -> String {
        fn esc(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let emit = |cells: &[String], out: &mut String| {
            let line: Vec<String> = cells.iter().map(|c| esc(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        emit(&self.headers, &mut out);
        for r in &self.rows {
            emit(r, &mut out);
        }
        out
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows were added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                if i == 0 {
                    write!(f, "{cell:<w$}", w = widths[i])?;
                } else {
                    write!(f, "{cell:>w$}", w = widths[i])?;
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["name".into(), "value".into()]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2.5".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4); // header, rule, 2 rows
        assert!(lines[0].contains("name"));
        assert!(lines[3].starts_with("long-name"));
    }

    #[test]
    fn row_f64_formats() {
        let mut t = Table::new(vec!["b".into(), "x".into(), "y".into()]);
        t.row_f64("bench", &[1.0, 0.5]);
        assert!(t.to_string().contains("1.000"));
        assert!(t.to_string().contains("0.500"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_round_trip() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["x,y".into(), "1".into()]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.starts_with("a,b\n"));
        assert!(csv.contains("\"x,y\",1"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_panics() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["x".into(), "y".into()]);
    }
}
