#![warn(missing_docs)]

//! Statistics, normalization and table rendering.
//!
//! The timing machine fills a [`RunStats`] per simulation; the benchmark
//! harness post-processes collections of them into the paper's tables and
//! figures with the helpers in [`summary`] and renders them with
//! [`table::Table`].

pub mod chart;
pub mod hist;
pub mod run;
pub mod summary;
pub mod table;

pub use chart::BarChart;
pub use hist::Histogram;
pub use run::{RunStats, TxOutcomeCounts};
pub use summary::{amean, gmean, normalize, normalize_to};
pub use table::Table;
