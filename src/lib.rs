#![warn(missing_docs)]

//! # CHATS — Chaining Transactions for best-effort HTM
//!
//! A full-system reproduction of *"Chaining Transactions for Effective
//! Concurrency Management in Hardware Transactional Memory"* (MICRO 2024):
//! a deterministic timing simulator of a 16-core multicore with MESI
//! directory coherence and six best-effort HTM systems, including the
//! paper's proposal — **CHATS**, a requester-speculates conflict-resolution
//! policy that forwards speculative values between transactions and orders
//! their commits with a 5-bit *Position-in-Chain* register.
//!
//! This crate is a facade re-exporting the workspace's public API:
//!
//! * [`core`] *(chats-core)* — the CHATS mechanism itself: PiC rules, the
//!   Validation State Buffer, conflict policies, power token, LEVC,
//! * [`machine`] *(chats-machine)* — the timing machine (cores, L1s with
//!   HTM support, blocking MESI directory),
//! * [`workloads`] *(chats-workloads)* — STAMP-like kernels with
//!   serializability checkers,
//! * [`tvm`] *(chats-tvm)* — the transactional bytecode VM,
//! * [`obs`] *(chats-obs)* — observability: pluggable trace sinks, timeline
//!   reconstruction with cycle accounting, Perfetto/Chrome-trace export,
//! * [`mem`] / [`noc`] / [`sim`] / [`stats`] — substrates.
//!
//! # Quickstart
//!
//! ```
//! use chats::prelude::*;
//!
//! // Run the high-contention kmeans kernel under the baseline and CHATS.
//! let cfg = RunConfig::quick_test();
//! let w = registry::by_name("kmeans-h").unwrap();
//! let base = run_workload(w.as_ref(), PolicyConfig::for_system(HtmSystem::Baseline), &cfg)
//!     .unwrap()
//!     .stats;
//! let chats = run_workload(w.as_ref(), PolicyConfig::for_system(HtmSystem::Chats), &cfg)
//!     .unwrap()
//!     .stats;
//! assert!(chats.forwardings > 0, "CHATS forwards speculative values");
//! assert!(base.forwardings == 0, "the baseline never does");
//! ```

pub use chats_core as core;
pub use chats_machine as machine;
pub use chats_mem as mem;
pub use chats_noc as noc;
pub use chats_obs as obs;
pub use chats_sim as sim;
pub use chats_stats as stats;
pub use chats_tvm as tvm;
pub use chats_workloads as workloads;

/// The most common imports for running experiments.
pub mod prelude {
    pub use chats_core::{
        AbortCause, ForwardSet, HtmSystem, Pic, PicContext, PolicyConfig, ValidationStateBuffer,
    };
    pub use chats_machine::{Machine, RingSink, SimError, TraceEvent, TraceSink, Tuning};
    pub use chats_mem::{Addr, LineAddr};
    pub use chats_sim::{Cycle, SystemConfig};
    pub use chats_stats::RunStats;
    pub use chats_tvm::{Program, ProgramBuilder, Reg, Vm};
    pub use chats_workloads::{registry, run_workload, run_workload_traced, RunConfig, Workload};
}
