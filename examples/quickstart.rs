//! Quickstart: run one contended workload under the requester-wins
//! baseline and under CHATS, and compare what happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use chats::prelude::*;

fn main() {
    let cfg = RunConfig::paper();
    let workload = registry::by_name("kmeans-h").expect("registered workload");

    println!("workload: kmeans-h ({} threads)\n", cfg.threads);

    let mut rows = Vec::new();
    for system in [HtmSystem::Baseline, HtmSystem::Chats] {
        let policy = PolicyConfig::for_system(system);
        let out = run_workload(workload.as_ref(), policy, &cfg).expect("simulation runs");
        rows.push((system, out.stats));
    }

    let base_cycles = rows[0].1.cycles as f64;
    println!(
        "{:<10} {:>10} {:>9} {:>8} {:>12} {:>11} {:>10}",
        "system", "cycles", "norm.time", "commits", "aborts", "forwardings", "validated"
    );
    for (system, s) in &rows {
        println!(
            "{:<10} {:>10} {:>9.3} {:>8} {:>12} {:>11} {:>10}",
            system.label(),
            s.cycles,
            s.cycles as f64 / base_cycles,
            s.commits,
            s.total_aborts(),
            s.forwardings,
            s.validations_ok,
        );
    }

    let speedup = base_cycles / rows[1].1.cycles as f64;
    println!(
        "\nCHATS chained {} speculative forwardings into commits: {:.2}x speedup.",
        rows[1].1.validations_ok, speedup
    );
}
