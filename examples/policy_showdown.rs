//! Policy showdown: run every workload under all six HTM systems and
//! print the normalized execution-time matrix (the Figure 4 / Figure 11
//! view of the whole design space).
//!
//! ```text
//! cargo run --release --example policy_showdown [--quick]
//! ```

use chats::prelude::*;
use chats::stats::{gmean, Table};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        RunConfig::quick_test()
    } else {
        RunConfig::paper()
    };

    let systems = HtmSystem::ALL;
    let mut headers = vec!["benchmark".to_string()];
    headers.extend(systems.iter().map(|s| s.label().to_string()));
    let mut table = Table::new(headers);
    let mut per_system: Vec<Vec<f64>> = vec![Vec::new(); systems.len()];

    for w in registry::all() {
        let base = run_workload(
            w.as_ref(),
            PolicyConfig::for_system(HtmSystem::Baseline),
            &cfg,
        )
        .expect("baseline runs")
        .stats
        .cycles as f64;
        let mut vals = Vec::new();
        for (k, &sys) in systems.iter().enumerate() {
            let s = run_workload(w.as_ref(), PolicyConfig::for_system(sys), &cfg)
                .expect("simulation runs")
                .stats;
            let v = s.cycles as f64 / base;
            if !w.is_micro() {
                per_system[k].push(v);
            }
            vals.push(v);
        }
        table.row_f64(w.name(), &vals);
    }
    let gm: Vec<f64> = per_system.iter().map(|v| gmean(v)).collect();
    table.row_f64("gmean", &gm);

    println!("normalized execution time (lower is better, baseline = 1.0)\n");
    println!("{table}");
    println!("every run passed its workload's serializability checker.");
}
