//! Policy showdown: run every workload under all six HTM systems and
//! print the normalized execution-time matrix (the Figure 4 / Figure 11
//! view of the whole design space).
//!
//! ```text
//! cargo run --release --example policy_showdown [--quick]
//! ```

use chats::obs::{Timeline, VecSink};
use chats::prelude::*;
use chats::stats::{gmean, Table};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        RunConfig::quick_test()
    } else {
        RunConfig::paper()
    };

    let systems = HtmSystem::ALL;
    let mut headers = vec!["benchmark".to_string()];
    headers.extend(systems.iter().map(|s| s.label().to_string()));
    let mut table = Table::new(headers);
    let mut per_system: Vec<Vec<f64>> = vec![Vec::new(); systems.len()];

    for w in registry::all() {
        let base = run_workload(
            w.as_ref(),
            PolicyConfig::for_system(HtmSystem::Baseline),
            &cfg,
        )
        .expect("baseline runs")
        .stats
        .cycles as f64;
        let mut vals = Vec::new();
        for (k, &sys) in systems.iter().enumerate() {
            let s = run_workload(w.as_ref(), PolicyConfig::for_system(sys), &cfg)
                .expect("simulation runs")
                .stats;
            let v = s.cycles as f64 / base;
            if !w.is_micro() {
                per_system[k].push(v);
            }
            vals.push(v);
        }
        table.row_f64(w.name(), &vals);
    }
    let gm: Vec<f64> = per_system.iter().map(|v| gmean(v)).collect();
    table.row_f64("gmean", &gm);

    println!("normalized execution time (lower is better, baseline = 1.0)\n");
    println!("{table}");

    // Where do the cycles of a contended run actually go? Trace one
    // representative workload under every policy and break each core-cycle
    // into the paper's buckets (the five columns partition the run).
    let anatomy = registry::by_name("kmeans-h").expect("registered workload");
    let mut acct = Table::new(
        [
            "system",
            "useful",
            "wasted",
            "val-stall",
            "fallback",
            "other",
        ]
        .map(String::from)
        .to_vec(),
    );
    for &sys in systems.iter() {
        let (out, sink) = run_workload_traced(
            anatomy.as_ref(),
            PolicyConfig::for_system(sys),
            &cfg,
            Box::new(VecSink::new()),
        )
        .expect("traced run completes");
        let events = VecSink::into_events(sink);
        let tl = Timeline::rebuild(&events, out.stats.cycles);
        let agg = tl.aggregate();
        let total = agg.total().max(1) as f64;
        let pct = |v: u64| format!("{:.1}%", 100.0 * v as f64 / total);
        acct.row(vec![
            sys.label().to_string(),
            pct(agg.useful),
            pct(agg.wasted),
            pct(agg.validation_stall),
            pct(agg.fallback),
            pct(agg.other),
        ]);
    }
    println!("cycle accounting on kmeans-h (share of all core-cycles)\n");
    println!("{acct}");
    println!("every run passed its workload's serializability checker.");
}
