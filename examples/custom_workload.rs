//! Custom workload: build your own transactional kernel with the TxVM
//! builder DSL, plug it into the `Workload` trait, and run it under any
//! HTM system with a serializability checker.
//!
//! The kernel here is a tiny bank: accounts hold balances, transactions
//! transfer between two random accounts, and the invariant is conservation
//! of money — any lost or duplicated update breaks the final total.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use chats::prelude::*;
use chats::sim::SimRng;
use chats::workloads::{ThreadProgram, WorkloadSetup};

const ACCOUNTS: u64 = 32;
const INITIAL_BALANCE: u64 = 1_000;
const TRANSFERS_PER_THREAD: u64 = 40;

struct Bank;

impl Workload for Bank {
    fn name(&self) -> &'static str {
        "bank-transfer"
    }

    fn setup(&self, threads: usize, seed: u64, _rng: &mut SimRng) -> WorkloadSetup {
        let (i, n, from, to, amt, a, v, bound) = (
            Reg(0),
            Reg(1),
            Reg(2),
            Reg(3),
            Reg(4),
            Reg(5),
            Reg(6),
            Reg(7),
        );
        let mut b = ProgramBuilder::new();
        b.imm(i, 0).imm(n, TRANSFERS_PER_THREAD);
        let top = b.label();
        b.bind(top);
        b.imm(bound, ACCOUNTS);
        b.rand(from, bound);
        b.rand(to, bound);
        b.imm(bound, 10);
        b.rand(amt, bound);
        b.pause(80);
        b.tx_begin();
        // debit `from`
        b.shli(a, from, 3);
        b.load(v, a);
        b.sub(v, v, amt);
        b.store(a, v);
        // credit `to`
        b.shli(a, to, 3);
        b.load(v, a);
        b.add(v, v, amt);
        b.store(a, v);
        b.tx_end();
        b.addi(i, i, 1);
        b.blt(i, n, top);
        b.halt();
        let program = b.build();

        let programs = (0..threads)
            .map(|t| ThreadProgram {
                program: program.clone(),
                presets: vec![],
                seed: seed ^ (t as u64 + 1).wrapping_mul(0xB5),
            })
            .collect();

        let init = (0..ACCOUNTS)
            .map(|acc| (Addr(acc * 8), INITIAL_BALANCE))
            .collect();

        let checker = Box::new(move |m: &Machine| {
            let total: u64 = (0..ACCOUNTS).map(|acc| m.inspect_word(Addr(acc * 8))).sum();
            let expect = ACCOUNTS * INITIAL_BALANCE;
            if total == expect {
                Ok(())
            } else {
                Err(format!("money not conserved: {total} != {expect}"))
            }
        });

        WorkloadSetup {
            programs,
            init,
            checker,
        }
    }
}

fn main() {
    let cfg = RunConfig::paper();
    println!(
        "bank-transfer: {} threads x {} transfers over {} accounts\n",
        cfg.threads, TRANSFERS_PER_THREAD, ACCOUNTS
    );
    println!(
        "{:<12} {:>10} {:>8} {:>8} {:>12}",
        "system", "cycles", "commits", "aborts", "forwardings"
    );
    for system in HtmSystem::ALL {
        let out = run_workload(&Bank, PolicyConfig::for_system(system), &cfg)
            .expect("transfers conserve money under every HTM system");
        let s = out.stats;
        println!(
            "{:<12} {:>10} {:>8} {:>8} {:>12}",
            system.label(),
            s.cycles,
            s.commits,
            s.total_aborts(),
            s.forwardings
        );
    }
    println!("\nall six systems conserved the bank's total balance.");
}
