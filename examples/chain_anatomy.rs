//! Chain anatomy: a hand-built two-transaction scenario showing exactly
//! what CHATS does on a conflict — the SpecResp forwarding, the PiC
//! assignment, the validation traffic, and the enforced commit order.
//!
//! Thread 0 (the producer) writes a shared line and then dawdles; thread 1
//! (the consumer) reads that line mid-transaction. Under the baseline the
//! conflict costs an abort; under CHATS the value is forwarded, validated
//! once the producer commits, and both transactions commit.
//!
//! ```text
//! cargo run --release --example chain_anatomy
//! ```

use chats::prelude::*;

const SHARED: u64 = 0; // word address of the contended line
const OUT0: u64 = 800; // producer's result slot
const OUT1: u64 = 808; // consumer's result slot

fn producer() -> Program {
    let (a, v) = (Reg(0), Reg(1));
    let mut b = ProgramBuilder::new();
    b.tx_begin();
    b.imm(a, SHARED);
    b.imm(v, 42);
    b.store(a, v); // the value that will be forwarded
    b.pause(400); // long tail: the consumer conflicts in this window
    b.imm(a, OUT0);
    b.store(a, v);
    b.tx_end();
    b.halt();
    b.build()
}

fn consumer() -> Program {
    let (a, v) = (Reg(0), Reg(1));
    let mut b = ProgramBuilder::new();
    b.pause(120); // let the producer write first
    b.tx_begin();
    b.imm(a, SHARED);
    b.load(v, a); // conflicting read -> SpecResp under CHATS
    b.addi(v, v, 1);
    b.imm(a, OUT1);
    b.store(a, v);
    b.tx_end();
    b.halt();
    b.build()
}

fn run(system: HtmSystem) -> (RunStats, u64, u64, Vec<String>, u64) {
    let mut sys = SystemConfig::default();
    sys.core.cores = 2;
    let mut m = Machine::new(sys, PolicyConfig::for_system(system), Tuning::default(), 1);
    // A deliberately small ring: enough for the protocol-level story, with
    // NoC-level chatter allowed to age out (and counted when it does).
    m.set_trace_sink(Box::new(RingSink::new(64)));
    m.load_thread(0, Vm::new(producer(), 0));
    m.load_thread(1, Vm::new(consumer(), 1));
    let stats = m.run(1_000_000).expect("scenario completes");
    let trace = m
        .trace_events()
        .iter()
        .filter(|e| !matches!(e, TraceEvent::NocSend { .. }))
        .map(ToString::to_string)
        .collect();
    let dropped = m.dropped_events();
    (
        stats,
        m.inspect_word(Addr(OUT0)),
        m.inspect_word(Addr(OUT1)),
        trace,
        dropped,
    )
}

fn main() {
    println!("scenario: T0 stores 42 to a shared line, then lingers; T1 reads it mid-flight.\n");
    for system in [HtmSystem::Baseline, HtmSystem::Chats] {
        let (s, out0, out1, trace, dropped) = run(system);
        println!("--- {} ---", system.label());
        println!("  protocol trace:");
        for line in &trace {
            println!("    {line}");
        }
        if dropped > 0 {
            println!(
                "  warning: {dropped} early event(s) aged out of the 64-entry \
                 ring (use a larger ring or a streaming sink for the full story)"
            );
        }
        println!("  cycles          : {}", s.cycles);
        println!("  commits         : {}", s.commits);
        println!("  aborts          : {}", s.total_aborts());
        println!("  SpecResps sent  : {}", s.forwardings);
        println!("  validations ok  : {}", s.validations_ok);
        println!("  T0 result       : {out0}");
        println!("  T1 result       : {out1}");
        assert_eq!(out0, 42, "producer's transaction must commit");
        match system {
            HtmSystem::Baseline => {
                // Requester-wins: T1's read aborts the *owner* T0, so T1
                // serializes BEFORE T0's write and reads the old 0.
                assert_eq!(out1, 1, "baseline serializes the reader first");
                println!("  order           : T1 before T0 (T0 aborted and retried)");
            }
            _ => {
                // CHATS forwards the speculative 42 and orders T1's commit
                // AFTER T0's through validation — no abort needed.
                assert_eq!(out1, 43, "CHATS serializes the consumer after the producer");
                assert!(s.forwardings >= 1, "the value travelled in a SpecResp");
                assert_eq!(s.total_aborts(), 0, "nobody aborted");
                println!("  order           : T0 before T1 (42 forwarded, then validated)");
            }
        }
        println!();
    }
    println!(
        "Both executions are serializable, but they pick different orders:\n\
         requester-wins sacrifices the producer and serializes the reader\n\
         first; CHATS keeps both alive, forwards the speculative 42, and\n\
         the PiC/validation machinery commits the consumer second."
    );
}
